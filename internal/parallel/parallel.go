// Package parallel is a discrete simulator of shared-nothing execution for
// the paper's §6: it executes the §2 example query over a partitioned
// EMP/DEPT database under nested iteration and under magic decorrelation,
// counting network messages, shipped rows, and computation fragments, and
// deriving a simulated makespan from per-node, per-phase work.
//
// The paper's analytic claims fall out of the counters:
//
//   - nested iteration with tables not partitioned on the correlation
//     attribute broadcasts every binding to every node and schedules
//     O(qualifying-tuples × n) computation fragments — O(n²) fragments as
//     both scale (§6.1);
//
//   - the magic-decorrelated plan repartitions each table once, then runs
//     every phase as co-partitioned local joins: O(n) fragments and
//     O(rows) messages (§6.2);
//
//   - when tables are already partitioned on the correlation attribute,
//     nested iteration runs locally and parallelism shows no special
//     inefficiency (§6.1 case 1) — Placement PartitionByCorrelation models
//     that.
//
// Both executions also compute the actual query answer, so tests can check
// the simulator against the single-node engine.
package parallel

import (
	"fmt"
	"hash/fnv"
	"sort"

	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/trace"
)

// Placement selects how tables are partitioned across nodes.
type Placement int

const (
	// PartitionByPrimaryKey spreads rows by their key — the general case
	// where the correlation attribute is NOT the partitioning column.
	PartitionByPrimaryKey Placement = iota
	// PartitionByCorrelation co-partitions both tables on the building
	// attribute (§6.1 case 1).
	PartitionByCorrelation
)

// String names the placement.
func (p Placement) String() string {
	if p == PartitionByCorrelation {
		return "corr-partitioned"
	}
	return "key-partitioned"
}

// Config parameterizes a simulation run.
type Config struct {
	Nodes     int
	Placement Placement
	// RowCost and MsgCost weight the makespan: time units per row
	// operation and per message.
	RowCost int64
	MsgCost int64
}

func (c Config) normalized() Config {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.RowCost <= 0 {
		c.RowCost = 1
	}
	if c.MsgCost <= 0 {
		c.MsgCost = 5
	}
	return c
}

// Metrics are the §6 quantities.
type Metrics struct {
	Messages    int64 // point-to-point messages (broadcasts count n-1)
	RowsShipped int64 // rows moved between nodes
	Fragments   int64 // computation fragments scheduled
	Phases      int   // global synchronization phases
	Work        int64 // total row operations across nodes
	Makespan    int64 // sum over phases of the slowest node's cost
}

// Result is the answer plus the cost metrics.
type Result struct {
	Rows    []string // "name" of qualifying departments, sorted
	Metrics Metrics
}

type row = storage.Row

// sim carries the partitioned data and accounting.
type sim struct {
	cfg   Config
	dept  [][]row // per node
	emp   [][]row
	m     Metrics
	phase []int64 // per-node cost in the current phase
}

func hashTo(v sqltypes.Value, n int) int {
	h := fnv.New32a()
	h.Write([]byte(sqltypes.Key([]sqltypes.Value{v})))
	return int(h.Sum32() % uint32(n))
}

const (
	deptName     = 0
	deptBudget   = 1
	deptNumEmps  = 2
	deptBuilding = 3
	empBuilding  = 1
)

func newSim(db *storage.DB, cfg Config) (*sim, error) {
	cfg = cfg.normalized()
	dt, et := db.Table("dept"), db.Table("emp")
	if dt == nil || et == nil {
		return nil, fmt.Errorf("parallel: database must contain dept and emp tables")
	}
	s := &sim{cfg: cfg, dept: make([][]row, cfg.Nodes), emp: make([][]row, cfg.Nodes)}
	for _, r := range dt.Rows {
		col := deptName
		if cfg.Placement == PartitionByCorrelation {
			col = deptBuilding
		}
		n := hashTo(r[col], cfg.Nodes)
		s.dept[n] = append(s.dept[n], r)
	}
	for _, r := range et.Rows {
		col := 0 // emp name
		if cfg.Placement == PartitionByCorrelation {
			col = empBuilding
		}
		n := hashTo(r[col], cfg.Nodes)
		s.emp[n] = append(s.emp[n], r)
	}
	s.beginPhase()
	return s, nil
}

func (s *sim) beginPhase() {
	s.phase = make([]int64, s.cfg.Nodes)
}

// endPhase folds the current phase into the makespan (the slowest node
// gates the barrier).
func (s *sim) endPhase() {
	max := int64(0)
	for _, w := range s.phase {
		if w > max {
			max = w
		}
	}
	s.m.Makespan += max
	s.m.Phases++
	s.beginPhase()
}

func (s *sim) work(node int, rows int64) {
	s.phase[node] += rows * s.cfg.RowCost
	s.m.Work += rows
}

func (s *sim) send(from, to int, rows int64) {
	s.m.Messages++
	s.m.RowsShipped += rows
	s.phase[from] += s.cfg.MsgCost
	s.phase[to] += s.cfg.MsgCost
}

// publish folds one simulation's metrics into the process-wide registry.
func (s *sim) publish(strategy string) {
	trace.Metrics.Counter("parallel.runs").Inc()
	trace.Metrics.Counter("parallel.runs." + strategy).Inc()
	trace.Metrics.Counter("parallel.messages").Add(s.m.Messages)
	trace.Metrics.Counter("parallel.rows_shipped").Add(s.m.RowsShipped)
	trace.Metrics.Counter("parallel.fragments").Add(s.m.Fragments)
	trace.Metrics.Counter("parallel.work").Add(s.m.Work)
	trace.Metrics.Gauge("parallel.last_makespan").Set(s.m.Makespan)
	trace.Metrics.Gauge("parallel.nodes").Set(int64(s.cfg.Nodes))
}

// RunNestedIteration simulates the §6.1 execution of the example query.
func RunNestedIteration(db *storage.DB, cfg Config) (*Result, error) {
	s, err := newSim(db, cfg)
	if err != nil {
		return nil, err
	}
	n := s.cfg.Nodes
	var answers []string

	if s.cfg.Placement == PartitionByCorrelation {
		// Case 1: both tables partitioned on building — fully local NI.
		for node := 0; node < n; node++ {
			s.work(node, int64(len(s.dept[node])))
			for _, d := range s.dept[node] {
				if d[deptBudget].I >= 10000 {
					continue
				}
				// Local subquery scan: one fragment, local only.
				s.m.Fragments++
				count := int64(0)
				s.work(node, int64(len(s.emp[node])))
				for _, e := range s.emp[node] {
					if sqltypes.Identical(e[empBuilding], d[deptBuilding]) {
						count++
					}
				}
				if d[deptNumEmps].I > count {
					answers = append(answers, d[deptName].S)
				}
			}
		}
		s.endPhase()
		sort.Strings(answers)
		s.publish("ni")
		return &Result{Rows: answers, Metrics: s.m}, nil
	}

	// General case: every qualifying department tuple broadcasts its
	// building to all nodes; each node computes a local count (one
	// fragment per node per invocation) and replies.
	for node := 0; node < n; node++ {
		s.work(node, int64(len(s.dept[node])))
		for _, d := range s.dept[node] {
			if d[deptBudget].I >= 10000 {
				continue
			}
			total := int64(0)
			for peer := 0; peer < n; peer++ {
				if peer != node {
					s.send(node, peer, 1) // broadcast the binding
				}
				s.m.Fragments++ // the peer's local count fragment
				local := int64(0)
				s.work(peer, int64(len(s.emp[peer])))
				for _, e := range s.emp[peer] {
					if sqltypes.Identical(e[empBuilding], d[deptBuilding]) {
						local++
					}
				}
				if peer != node {
					s.send(peer, node, 1) // reply with the local count
				}
				total += local
			}
			if d[deptNumEmps].I > total {
				answers = append(answers, d[deptName].S)
			}
		}
	}
	s.endPhase()
	sort.Strings(answers)
	s.publish("ni")
	return &Result{Rows: answers, Metrics: s.m}, nil
}

// RunMagic simulates the §6.2 execution of the magic-decorrelated plan.
func RunMagic(db *storage.DB, cfg Config) (*Result, error) {
	s, err := newSim(db, cfg)
	if err != nil {
		return nil, err
	}
	n := s.cfg.Nodes

	// Phase 1: compute SUPP locally and repartition it on the correlation
	// attribute (a no-op shuffle when already co-partitioned).
	supp := make([][]row, n)
	for node := 0; node < n; node++ {
		s.work(node, int64(len(s.dept[node])))
		s.m.Fragments++
		for _, d := range s.dept[node] {
			if d[deptBudget].I >= 10000 {
				continue
			}
			dest := hashTo(d[deptBuilding], n)
			if dest != node {
				s.send(node, dest, 1)
			}
			supp[dest] = append(supp[dest], d)
		}
	}
	s.endPhase()

	// Phase 2: project the magic table locally (already partitioned on
	// building, so local DISTINCT is global DISTINCT).
	magic := make([]map[string]sqltypes.Value, n)
	for node := 0; node < n; node++ {
		s.work(node, int64(len(supp[node])))
		s.m.Fragments++
		magic[node] = map[string]sqltypes.Value{}
		for _, d := range supp[node] {
			magic[node][sqltypes.Key([]sqltypes.Value{d[deptBuilding]})] = d[deptBuilding]
		}
	}
	s.endPhase()

	// Phase 3: repartition EMP on the correlation attribute.
	emp := make([][]row, n)
	for node := 0; node < n; node++ {
		s.work(node, int64(len(s.emp[node])))
		s.m.Fragments++
		for _, e := range s.emp[node] {
			dest := hashTo(e[empBuilding], n)
			if dest != node && s.cfg.Placement != PartitionByCorrelation {
				s.send(node, dest, 1)
			}
			emp[dest] = append(emp[dest], e)
		}
	}
	s.endPhase()

	// Phase 4: local join magic ⋈ emp and local aggregation (grouping is
	// on the partitioning attribute, so no further shuffle).
	counts := make([]map[string]int64, n)
	for node := 0; node < n; node++ {
		s.work(node, int64(len(emp[node])))
		s.m.Fragments++
		counts[node] = map[string]int64{}
		for _, e := range emp[node] {
			k := sqltypes.Key([]sqltypes.Value{e[empBuilding]})
			if _, ok := magic[node][k]; ok {
				counts[node][k]++
			}
		}
	}
	s.endPhase()

	// Phase 5: local join SUPP ⋈ counts (co-partitioned), apply the
	// predicate, emit answers.
	var answers []string
	for node := 0; node < n; node++ {
		s.work(node, int64(len(supp[node])))
		s.m.Fragments++
		for _, d := range supp[node] {
			k := sqltypes.Key([]sqltypes.Value{d[deptBuilding]})
			if d[deptNumEmps].I > counts[node][k] {
				answers = append(answers, d[deptName].S)
			}
		}
	}
	s.endPhase()
	sort.Strings(answers)
	s.publish("magic")
	return &Result{Rows: answers, Metrics: s.m}, nil
}
