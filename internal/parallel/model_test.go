package parallel_test

import (
	"testing"

	"decorr/internal/engine"
	"decorr/internal/parallel"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

func planFor(t *testing.T, db *storage.DB, sql string, s engine.Strategy) parallel.Metrics {
	t.Helper()
	e := engine.New(db)
	p, err := e.Prepare(sql, s)
	if err != nil {
		t.Fatal(err)
	}
	return parallel.PlanCost(db, p.Graph, parallel.Config{Nodes: 8})
}

// The generalized plan model must reproduce the §6 asymmetry on the
// example query: per-binding broadcasts and fragments for NI, bounded
// phases for the decorrelated plan.
func TestPlanCostExampleQuery(t *testing.T) {
	db := tpcd.EmpDeptSized(800, 4000, 32, 7)
	ni := planFor(t, db, tpcd.ExampleQuery, engine.NI)
	mag := planFor(t, db, tpcd.ExampleQuery, engine.Magic)
	if ni.Fragments <= 4*mag.Fragments {
		t.Errorf("NI fragments (%d) should dwarf decorrelated (%d)", ni.Fragments, mag.Fragments)
	}
	if ni.Messages <= mag.Messages {
		t.Errorf("NI messages (%d) should exceed decorrelated (%d)", ni.Messages, mag.Messages)
	}
}

// The §6 claims extend to the paper's TPC-D workload: the decorrelated
// Query 1(b) plan schedules a bounded number of fragments while nested
// iteration pays per binding.
func TestPlanCostTPCDQueries(t *testing.T) {
	db := tpcd.Generate(tpcd.Config{SF: 0.05, Seed: 42})
	for _, sql := range []string{tpcd.Query1b, tpcd.Query3} {
		ni := planFor(t, db, sql, engine.NI)
		mag := planFor(t, db, sql, engine.Magic)
		if ni.Fragments <= mag.Fragments {
			t.Errorf("NI fragments (%d) should exceed decorrelated (%d)", ni.Fragments, mag.Fragments)
		}
	}
}

// Fragment growth with cluster size: linear for NI (per binding × n),
// per-phase for the decorrelated plan.
func TestPlanCostScalesWithNodes(t *testing.T) {
	db := tpcd.EmpDeptSized(400, 2000, 16, 3)
	e := engine.New(db)
	pNI, err := e.Prepare(tpcd.ExampleQuery, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	f8 := parallel.PlanCost(db, pNI.Graph, parallel.Config{Nodes: 8}).Fragments
	f16 := parallel.PlanCost(db, pNI.Graph, parallel.Config{Nodes: 16}).Fragments
	if f16 != 2*f8 {
		t.Errorf("NI fragments: n=8 -> %d, n=16 -> %d (want exact doubling)", f8, f16)
	}
}

// An uncorrelated query costs no correlated broadcasts under either
// strategy name.
func TestPlanCostUncorrelated(t *testing.T) {
	db := tpcd.Generate(tpcd.Config{SF: 0.02, Seed: 1})
	m := planFor(t, db, "select p_brand, count(*) from parts group by p_brand", engine.NI)
	if m.Fragments > int64(8*4) {
		t.Errorf("simple aggregate scheduled %d fragments", m.Fragments)
	}
}
