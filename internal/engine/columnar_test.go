package engine_test

import (
	"fmt"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// execCounters extracts the counters that must match bit-for-bit between
// the vectorized and row engines at every worker count. CSERecomputes and
// MemoHits are scheduling-sensitive at workers>1 (documented in
// exec.Options.Workers) and are excluded.
func execCounters(s *exec.Stats) [7]int64 {
	return [7]int64{s.BoxEvals, s.RowsScanned, s.IndexLookups, s.RowsJoined,
		s.RowsGrouped, s.HashBuilds, s.SubqueryInvocations}
}

// TestColumnarRowParity runs the paper workload with the vectorized engine
// on and off at workers 1, 2, and 8: rows (including order) and execution
// counters must be identical. This is the determinism matrix of the
// vectorized executor — the same contract the differ's rowmode variants
// fuzz, pinned here on the known queries.
func TestColumnarRowParity(t *testing.T) {
	tpcdDB := tpcd.Generate(tpcd.Config{SF: 0.01, Seed: 7})
	empDB := tpcd.EmpDept()
	cases := []struct {
		name, sql  string
		db         *storage.DB
		strategies []engine.Strategy
	}{
		{"Example", tpcd.ExampleQuery, empDB, []engine.Strategy{engine.NI, engine.Magic}},
		{"Query1", tpcd.Query1, tpcdDB, []engine.Strategy{engine.NI, engine.Magic}},
		{"Query2", tpcd.Query2, tpcdDB, []engine.Strategy{engine.NI, engine.Magic}},
		{"Query3", tpcd.Query3, tpcdDB, []engine.Strategy{engine.Magic}},
		{"HashJoinGroup",
			`Select D.building, Count(*), Sum(D.budget) From Dept D, Emp E
			 Where D.name = E.building Group By D.building Order By D.building`,
			empDB, []engine.Strategy{engine.NI}},
		{"IndexJoin",
			`Select E.name From Emp E, Dept D
			 Where E.building = D.building and D.budget < 20000 Order By E.name`,
			empDB, []engine.Strategy{engine.NI}},
		{"DistinctProject",
			`Select Distinct E.building From Emp E`,
			empDB, []engine.Strategy{engine.NI}},
	}
	for _, c := range cases {
		for _, s := range c.strategies {
			t.Run(c.name+"/"+s.String(), func(t *testing.T) {
				type run struct {
					rows  []string
					stats [7]int64
				}
				var want *run
				for _, w := range []int{1, 2, 8} {
					for _, rowMode := range []bool{false, true} {
						e := engine.New(c.db)
						e.Workers = w
						e.RowMode = rowMode
						rows, stats, err := e.Query(c.sql, s)
						if err != nil {
							t.Fatalf("workers=%d rowmode=%v: %v", w, rowMode, err)
						}
						got := run{rows: ordered(rows), stats: execCounters(stats)}
						if want == nil {
							want = &got
							continue
						}
						if len(got.rows) != len(want.rows) {
							t.Fatalf("workers=%d rowmode=%v: %d rows, want %d",
								w, rowMode, len(got.rows), len(want.rows))
						}
						for i := range got.rows {
							if got.rows[i] != want.rows[i] {
								t.Fatalf("workers=%d rowmode=%v row %d: got %q want %q",
									w, rowMode, i, got.rows[i], want.rows[i])
							}
						}
						if got.stats != want.stats {
							t.Fatalf("workers=%d rowmode=%v: counters %v, want %v",
								w, rowMode, got.stats, want.stats)
						}
					}
				}
			})
		}
	}
}

// edgeDB builds a table tailored for selection-vector edge cases: n rows
// where val is NULL on every third row and grp cycles through three
// strings.
func edgeDB(n int) *storage.DB {
	db := storage.NewDB()
	tbl := db.Create(schema.NewTable("t",
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "val", Type: schema.TInt},
		schema.Column{Name: "grp", Type: schema.TString},
	))
	grps := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		val := sqltypes.NewInt(int64(i % 50))
		if i%3 == 2 {
			val = sqltypes.Null
		}
		if err := tbl.Insert(storage.Row{
			sqltypes.NewInt(int64(i)), val, sqltypes.NewString(grps[i%3]),
		}); err != nil {
			panic(err)
		}
	}
	return db
}

// TestColumnarEdgeCases pins the selection-vector edge cases: empty
// tables, all-NULL columns (as filter operands, join keys, and group
// keys), and batch sizes straddling the columnar morsel boundary — all
// compared row-vs-columnar at several worker counts.
func TestColumnarEdgeCases(t *testing.T) {
	queries := []struct{ name, sql string }{
		{"FilterNullable", `Select T.id From T Where T.val > 10 Order By T.id`},
		{"SelfJoinNullKey", `Select A.id From T A, T B Where A.val = B.val and B.id < 5 Order By A.id`},
		{"GroupNullable", `Select T.grp, Count(T.val), Sum(T.val), Min(T.val) From T
			Group By T.grp Order By T.grp`},
		{"UngroupedEmptyFilter", `Select Count(*), Sum(T.val) From T Where T.id < 0`},
		{"DistinctVals", `Select Distinct T.val From T`},
	}
	// 0: empty table; 1: single row; 2047/2048/2049/4097: morsel-boundary
	// splits around colMorsel=2048.
	for _, n := range []int{0, 1, 2047, 2048, 2049, 4097} {
		db := edgeDB(n)
		for _, q := range queries {
			t.Run(fmt.Sprintf("%s/n=%d", q.name, n), func(t *testing.T) {
				var want []string
				for _, w := range []int{1, 8} {
					for _, rowMode := range []bool{false, true} {
						e := engine.New(db)
						e.Workers = w
						e.RowMode = rowMode
						rows, _, err := e.Query(q.sql, engine.NI)
						if err != nil {
							t.Fatalf("workers=%d rowmode=%v: %v", w, rowMode, err)
						}
						got := ordered(rows)
						if want == nil {
							want = got
							if len(want) == 0 {
								want = []string{} // distinguish "ran" from nil
							}
							continue
						}
						if len(got) != len(want) {
							t.Fatalf("workers=%d rowmode=%v: %d rows, want %d",
								w, rowMode, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("workers=%d rowmode=%v row %d: got %q want %q",
									w, rowMode, i, got[i], want[i])
							}
						}
					}
				}
			})
		}
	}
}

// TestColumnarAllNullColumn pins the all-NULL column representation (a
// vector with no typed array at all): comparisons yield UNKNOWN, join
// keys never match, COUNT skips, and GROUP BY folds into the NULL group.
func TestColumnarAllNullColumn(t *testing.T) {
	db := storage.NewDB()
	tbl := db.Create(schema.NewTable("n",
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "v", Type: schema.TInt},
	))
	for i := 0; i < 10; i++ {
		if err := tbl.Insert(storage.Row{sqltypes.NewInt(int64(i)), sqltypes.Null}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []struct {
		sql  string
		want int
	}{
		{`Select N.id From N Where N.v = 3`, 0},
		{`Select A.id From N A, N B Where A.v = B.v`, 0},
		{`Select Count(N.v), Count(*) From N`, 1},
		{`Select N.v, Count(*) From N Group By N.v`, 1},
	} {
		for _, rowMode := range []bool{false, true} {
			e := engine.New(db)
			e.RowMode = rowMode
			rows, _, err := e.Query(q.sql, engine.NI)
			if err != nil {
				t.Fatalf("%s rowmode=%v: %v", q.sql, rowMode, err)
			}
			if len(rows) != q.want {
				t.Fatalf("%s rowmode=%v: %d rows, want %d", q.sql, rowMode, len(rows), q.want)
			}
		}
	}
}

// TestRowModeEnv pins the DECORR_ROWMODE escape hatch: with the variable
// set, every execution takes the row path (observable only as identical
// results here; the variable exists for bisection in the field).
func TestRowModeEnv(t *testing.T) {
	db := tpcd.EmpDept()
	e := engine.New(db)
	want, _, err := e.Query(tpcd.ExampleQuery, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("DECORR_ROWMODE", "1")
	got, _, err := engine.New(db).Query(tpcd.ExampleQuery, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	w, g := ordered(want), ordered(got)
	if len(w) != len(g) {
		t.Fatalf("rowmode env: %d rows, want %d", len(g), len(w))
	}
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("rowmode env row %d: got %q want %q", i, g[i], w[i])
		}
	}
}
