package engine_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/tpcd"
	"decorr/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestTraceGoldenExampleMagic pins the full pipeline trace of the §2
// example query under magic decorrelation: the rule-firing order, pass
// numbers, decorrelation steps, and execution span nesting are all
// deterministic, so the timing-free rendering is an exact golden file.
func TestTraceGoldenExampleMagic(t *testing.T) {
	ring := trace.NewRingSink(0)
	e := engine.New(tpcd.EmpDept())
	e.Tracer = trace.New(ring)
	p, err := e.Prepare(tpcd.ExampleQuery, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	got := trace.FormatEvents(ring.Events(), false)

	golden := filepath.Join("testdata", "trace_example_magic.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("trace drifted from golden file (run with -update to regenerate)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTraceDisabledProducesNoEvents guards the off switch: a nil tracer
// must leave no trace anywhere in the pipeline.
func TestTraceDisabledProducesNoEvents(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.Prepare(tpcd.ExampleQuery, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	// Nothing to assert on a sink — there is none; this test exists to
	// exercise every nil-guarded call path under the race detector.
}

// TestTraceCoversPipelineStages asserts the span inventory the CLI's
// -trace flag promises: parse, semant, rewrite rules with pass numbers,
// decorrelation, and per-box execution.
func TestTraceCoversPipelineStages(t *testing.T) {
	ring := trace.NewRingSink(0)
	e := engine.New(tpcd.Generate(tpcd.Config{SF: 0.05, Seed: 42}))
	e.Tracer = trace.New(ring)
	p, err := e.Prepare(tpcd.Query1, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run(); err != nil {
		t.Fatal(err)
	}
	byName := map[string]int{}
	byCat := map[string]int{}
	for _, ev := range ring.Events() {
		byName[ev.Name]++
		byCat[ev.Cat]++
	}
	for _, name := range []string{"parse", "semant", "decorrelate", "execute"} {
		if byName[name] == 0 {
			t.Errorf("no %q span in trace", name)
		}
	}
	if byCat["rewrite"] == 0 {
		t.Error("no rewrite-rule spans in trace")
	}
	if byCat["exec"] == 0 {
		t.Error("no per-box execution spans in trace")
	}
}
