package engine_test

import (
	"strings"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/tpcd"
)

func TestViewsBasic(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	if err := e.CreateView(`create view lowbudget as
		select name, building, num_emps from dept where budget < 10000`); err != nil {
		t.Fatal(err)
	}
	got, _ := query(t, e, "select name from lowbudget order by name", engine.NI)
	sameRows(t, "view", got, []string{"archives", "shoes", "tools", "toys"})
}

func TestViewColumnRenames(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	if err := e.CreateView(`create view b(who, at) as select name, building from emp`); err != nil {
		t.Fatal(err)
	}
	got, _ := query(t, e, "select who from b where at = 'B3'", engine.NI)
	sameRows(t, "renamed", got, []string{"fay"})
}

func TestViewOfView(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	if err := e.CreateView(`create view v1 as select name, budget from dept`); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateView(`create view v2 as select name from v1 where budget < 1000`); err != nil {
		t.Fatal(err)
	}
	got, _ := query(t, e, "select name from v2", engine.NI)
	sameRows(t, "view-of-view", got, []string{"archives"})
}

// The paper's §2.1 view stack, verbatim modulo dialect: the decorrelated
// query expressed by hand through views must match both nested iteration
// on the original and the automatic Magic rewrite.
func TestPaperSection21ViewStack(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	for _, v := range []string{
		`create view supp_dept as
		   (select name, building, num_emps from dept where budget < 10000)`,
		`create view magic as (select distinct building from supp_dept)`,
		`create view decorr_subquery(building, cnt) as
		   (select m.building, count(*) from magic m, emp e
		    where m.building = e.building group by m.building)`,
		// The paper's BugRemoval view, verbatim modulo dialect: Magic LOJ
		// Decorr_SubQuery with COALESCE(count, 0).
		`create view bugremoval(building, cnt) as
		   (select m.building, coalesce(d.cnt, 0)
		    from magic m left outer join decorr_subquery d
		    on m.building = d.building)`,
	} {
		if err := e.CreateView(v); err != nil {
			t.Fatalf("%s: %v", v, err)
		}
	}
	got, _ := query(t, e, `
		select s.name from supp_dept s, bugremoval b
		where s.building = b.building and s.num_emps > b.cnt
		order by name`, engine.NI)
	want, _ := query(t, e, tpcd.ExampleQuery, engine.Magic)
	sameRows(t, "hand-decorrelated view stack vs Magic", got, want)
	sameRows(t, "vs ground truth", got, []string{"archives", "toys"})
}

func TestViewErrors(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	if err := e.CreateView("create view dept as select name from emp"); err == nil {
		t.Error("view shadowing a base table accepted")
	}
	if err := e.CreateView("create view broken as select ghost from emp"); err == nil {
		t.Error("view over unknown column accepted")
	}
	if _, _, err := e.Query("select * from broken", engine.NI); err == nil {
		t.Error("failed view definition should not register")
	}
	if err := e.CreateView("create view ok as select name from emp"); err != nil {
		t.Fatal(err)
	}
	e.DropView("ok")
	if _, _, err := e.Query("select * from ok", engine.NI); err == nil {
		t.Error("dropped view still resolvable")
	}
	if err := e.CreateView("select name from emp"); err == nil ||
		!strings.Contains(err.Error(), "CREATE VIEW") {
		t.Errorf("non-view statement: %v", err)
	}
}

func TestViewDecorrelatedThroughMagic(t *testing.T) {
	// A view containing a correlated subquery; querying it under Magic
	// must decorrelate the expansion.
	e := engine.New(tpcd.EmpDept())
	if err := e.CreateView(`create view busy as
		select d.name from dept d
		where d.num_emps > (select count(*) from emp e where e.building = d.building)`); err != nil {
		t.Fatal(err)
	}
	want, _ := query(t, e, "select name from busy", engine.NI)
	got, stats := query(t, e, "select name from busy", engine.Magic)
	sameRows(t, "view under Magic", got, want)
	if stats.SubqueryInvocations != 0 {
		t.Errorf("correlation inside the view not decorrelated: %d invocations", stats.SubqueryInvocations)
	}
}

// Dotted names and views occupy disjoint namespaces, resolved in a fixed
// order: catalog (including the sys.* synthetic tables) before views. A
// user view named after the bare table part of a qualified name coexists
// with it, the dotted spelling keeps resolving to the catalog, and the
// two colliding under one default alias in the same FROM is a
// deterministic error.
func TestDottedNamesVsViews(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.MountSystemCatalog()

	// Qualified view names are rejected up front with a direct message.
	err := e.CreateView("create view sys.shadow as select name from emp")
	if err == nil || !strings.Contains(err.Error(), "cannot be qualified") {
		t.Fatalf("qualified view name: %v", err)
	}

	// A view named "metrics" — the bare table part of sys.metrics — is legal.
	if err := e.CreateView("create view metrics as select name from emp where building = 'B1'"); err != nil {
		t.Fatal(err)
	}

	// The dotted name still resolves to the synthetic catalog table: its
	// "kind" column does not exist on the view, so this query only binds
	// if the catalog won.
	if _, _, err := e.Query("select kind from sys.metrics", engine.NI); err != nil {
		t.Errorf("sys.metrics no longer resolves to the catalog: %v", err)
	}
	// The bare name resolves to the view.
	got, _ := query(t, e, "select name from metrics order by name", engine.NI)
	want, _ := query(t, e, "select name from emp where building = 'B1' order by name", engine.NI)
	sameRows(t, "bare name resolves to the view", got, want)

	// A dotted FROM name defaults its alias to the bare table part.
	if _, _, err := e.Query("select metrics.kind from sys.metrics where metrics.value >= 0", engine.NI); err != nil {
		t.Errorf("default alias of a dotted name: %v", err)
	}

	// Catalog table and view under one default alias: deterministic error.
	_, _, err = e.Query("select name from sys.metrics, metrics", engine.NI)
	if err == nil || !strings.Contains(err.Error(), `duplicate FROM alias "metrics"`) {
		t.Errorf("colliding default aliases: %v", err)
	}
	// An explicit alias resolves the collision.
	if _, _, err := e.Query("select v.name, m.kind from sys.metrics m, metrics v", engine.NI); err != nil {
		t.Errorf("explicit aliases: %v", err)
	}
}

func TestExecDispatch(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	rows, stats, err := e.Exec("create view v as select name from emp", engine.NI)
	if err != nil || rows != nil || stats != nil {
		t.Fatalf("create-view via Exec: %v %v %v", rows, stats, err)
	}
	rows, _, err = e.Exec("select count(*) from v", engine.NI)
	if err != nil || len(rows) != 1 || rows[0][0].I != 6 {
		t.Fatalf("query via Exec: %v %v", rows, err)
	}
}
