package engine

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"decorr/internal/exec"
)

// Registry tracks the queries an engine is running right now plus a
// bounded ring of recently completed ones. It is the data source behind
// sys.active_queries and sys.query_log and the target of Kill: every
// tracked run executes under a registry-owned cancel function, so killing
// a query reuses the governor's cancellation path — the victim fails with
// exec.ErrCanceled within one morsel of leaf work, like any other
// context cancellation.
//
// Tracking is opt-in per engine (Engine.EnableRegistry or
// MountSystemCatalog): an untracked engine pays nothing.
type Registry struct {
	nextID atomic.Int64

	mu     sync.Mutex
	active map[int64]*activeQuery
	// log is a ring of the last logCap completed queries; logNext is the
	// slot the next completion overwrites once the ring has wrapped.
	log     []QueryLogEntry
	logNext int
	logCap  int
}

// activeQuery is the registry's live record of one run. The stats pointer
// is published by RunParamsContext after it builds the executor; the
// executor's workers keep bumping the pointee atomically, so progress
// snapshots use exec.Stats.AtomicClone.
type activeQuery struct {
	id       int64
	text     string
	strategy Strategy
	start    time.Time
	cancel   context.CancelFunc
	stats    atomic.Pointer[exec.Stats]
}

// ActiveQuery is a point-in-time view of one running query.
type ActiveQuery struct {
	ID       int64
	Text     string
	Strategy Strategy
	Start    time.Time
	// Progress is the run's work counters as of the snapshot — rows
	// scanned/joined/grouped move while the query runs.
	Progress exec.Stats
}

// QueryLogEntry records one completed (or failed) query.
type QueryLogEntry struct {
	ID       int64
	Text     string
	Strategy Strategy
	Start    time.Time
	Duration time.Duration
	RowsOut  int
	// Err is the error text, "" on success.
	Err string
	// Trip names the governance budget that ended the run — "canceled",
	// "deadline", "row-budget", "mem-budget", or "panic" — and is "" for
	// successful runs and ordinary (non-governance) errors.
	Trip string
	// Progress holds the final work counters; for a killed or tripped
	// query these are the partial counts at the moment it stopped.
	Progress exec.Stats
}

// DefaultQueryLogCap is the query-log ring size EnableRegistry uses for a
// non-positive capacity.
const DefaultQueryLogCap = 256

func newRegistry(logCap int) *Registry {
	if logCap <= 0 {
		logCap = DefaultQueryLogCap
	}
	return &Registry{active: map[int64]*activeQuery{}, logCap: logCap}
}

// begin registers a run and returns its record. cancel must stop the run
// (it is invoked by Kill, possibly more than once).
func (r *Registry) begin(text string, s Strategy, cancel context.CancelFunc) *activeQuery {
	aq := &activeQuery{
		id:       r.nextID.Add(1),
		text:     text,
		strategy: s,
		start:    time.Now(),
		cancel:   cancel,
	}
	r.mu.Lock()
	r.active[aq.id] = aq
	r.mu.Unlock()
	return aq
}

// finish moves a run from the active set into the completed ring.
func (r *Registry) finish(aq *activeQuery, rowsOut int, err error) {
	entry := QueryLogEntry{
		ID:       aq.id,
		Text:     aq.text,
		Strategy: aq.strategy,
		Start:    aq.start,
		Duration: time.Since(aq.start),
		RowsOut:  rowsOut,
		Trip:     budgetTrip(err),
		Progress: aq.progress(),
	}
	if err != nil {
		entry.Err = err.Error()
	}
	r.mu.Lock()
	delete(r.active, aq.id)
	if len(r.log) < r.logCap {
		r.log = append(r.log, entry)
	} else {
		r.log[r.logNext] = entry
		r.logNext = (r.logNext + 1) % r.logCap
	}
	r.mu.Unlock()
}

// progress snapshots the run's counters (zero before the executor has
// been published).
func (aq *activeQuery) progress() exec.Stats {
	if st := aq.stats.Load(); st != nil {
		return st.AtomicClone()
	}
	return exec.Stats{}
}

// Kill cancels the identified query and reports whether it was running.
// The victim's execution fails with exec.ErrCanceled; the entry leaves
// the active set when the run unwinds, not synchronously here.
func (r *Registry) Kill(id int64) bool {
	r.mu.Lock()
	aq, ok := r.active[id]
	r.mu.Unlock()
	if !ok {
		return false
	}
	aq.cancel()
	return true
}

// Active snapshots the running queries in ID (= start) order.
func (r *Registry) Active() []ActiveQuery {
	r.mu.Lock()
	aqs := make([]*activeQuery, 0, len(r.active))
	for _, aq := range r.active {
		aqs = append(aqs, aq)
	}
	r.mu.Unlock()
	out := make([]ActiveQuery, 0, len(aqs))
	for _, aq := range aqs {
		out = append(out, ActiveQuery{
			ID:       aq.id,
			Text:     aq.text,
			Strategy: aq.strategy,
			Start:    aq.start,
			Progress: aq.progress(),
		})
	}
	sortActive(out)
	return out
}

func sortActive(qs []ActiveQuery) {
	// Insertion sort: the active set is small and mostly ordered already.
	for i := 1; i < len(qs); i++ {
		for j := i; j > 0 && qs[j-1].ID > qs[j].ID; j-- {
			qs[j-1], qs[j] = qs[j], qs[j-1]
		}
	}
}

// Log returns the completed-query ring oldest first.
func (r *Registry) Log() []QueryLogEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueryLogEntry, 0, len(r.log))
	if len(r.log) < r.logCap {
		return append(out, r.log...)
	}
	out = append(out, r.log[r.logNext:]...)
	return append(out, r.log[:r.logNext]...)
}

// budgetTrip classifies a run-ending error as the governance budget it
// tripped, or "" for success and ordinary errors.
func budgetTrip(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, exec.ErrCanceled):
		return "canceled"
	case errors.Is(err, exec.ErrDeadlineExceeded):
		return "deadline"
	case errors.Is(err, exec.ErrRowBudget):
		return "row-budget"
	case errors.Is(err, exec.ErrMemBudget):
		return "mem-budget"
	case errors.Is(err, exec.ErrPanic):
		return "panic"
	}
	return ""
}
