package engine_test

import (
	"math/rand"
	"strings"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/tpcd"
)

// A join with an expensive grouped derived table: magic sets should
// restrict the aggregation to the join bindings that matter.
const msQuery = `
	select p.p_partkey, t.total
	from parts p,
	  (select l_partkey, sum(l_quantity) from lineitem group by l_partkey) as t(k, total)
	where p.p_partkey = t.k and p.p_brand = 'Brand#23' and p.p_container = '6 PACK'`

func TestMagicSetsRestrictsAggregation(t *testing.T) {
	db := tpcd.Generate(tpcd.Config{SF: 0.1, Seed: 42})
	plain := engine.New(db)
	want, plainStats := query(t, plain, msQuery, engine.NI)

	ms := engine.New(db)
	ms.MagicSets = true
	got, msStats := query(t, ms, msQuery, engine.NI)
	sameRows(t, "magic sets", got, want)
	if len(want) == 0 {
		t.Fatal("workload produced no rows; test is vacuous")
	}
	// The restricted plan must group far fewer rows (all of lineitem vs
	// only the qualifying parts' line items).
	if msStats.RowsGrouped >= plainStats.RowsGrouped {
		t.Errorf("magic sets did not restrict the aggregation: grouped %d vs %d",
			msStats.RowsGrouped, plainStats.RowsGrouped)
	}
	if msStats.RowsGrouped*10 > plainStats.RowsGrouped {
		t.Errorf("restriction too weak: grouped %d vs %d", msStats.RowsGrouped, plainStats.RowsGrouped)
	}
}

func TestMagicSetsPlanShape(t *testing.T) {
	db := tpcd.Generate(tpcd.Config{SF: 0.02, Seed: 42})
	e := engine.New(db)
	e.MagicSets = true
	p, err := e.Prepare(msQuery, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Explain(), "MAGICSET") {
		t.Errorf("plan lacks the magic-set table:\n%s", p.Explain())
	}
}

func TestMagicSetsComposesWithDecorrelation(t *testing.T) {
	db := tpcd.Generate(tpcd.Config{SF: 0.05, Seed: 42})
	e := engine.New(db)
	e.MagicSets = true
	for _, sql := range []string{tpcd.Query1, tpcd.Query2, tpcd.Query3} {
		want, _ := query(t, engine.New(db), sql, engine.NI)
		got, _ := query(t, e, sql, engine.Magic)
		sameRows(t, "magic sets + decorrelation on "+sql[:25], got, want)
	}
}

// Randomized differential with the knob on: magic sets must never change
// results.
func TestMagicSetsRandomized(t *testing.T) {
	iters := 150
	if testing.Short() {
		iters = 30
	}
	for seed := 0; seed < iters; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		db := randDB(r)
		sql := randQuery(r)
		plain := engine.New(db)
		want, _, err := plain.Query(sql, engine.NI)
		if err != nil {
			continue
		}
		ms := engine.New(db)
		ms.MagicSets = true
		for _, s := range []engine.Strategy{engine.NI, engine.Magic} {
			got, _, err := ms.Query(sql, s)
			if err != nil {
				t.Fatalf("seed %d: %s with magic sets failed on\n%s\n%v", seed, s, sql, err)
			}
			g, w := multiset(got), multiset(want)
			if strings.Join(g, ";") != strings.Join(w, ";") {
				t.Fatalf("seed %d: %s with magic sets diverges on\n%s\ngot  %v\nwant %v", seed, s, sql, g, w)
			}
		}
	}
}
