package engine_test

import (
	"regexp"
	"strings"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/tpcd"
)

func TestExplainAnalyzeShowsNestedIteration(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.Prepare(tpcd.ExampleQuery, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	// The correlated aggregate must show 4 evaluations (one per
	// low-budget department binding).
	if !regexp.MustCompile(`GROUPBY.*evals=4`).MatchString(out) {
		t.Errorf("nested iteration not visible in profile:\n%s", out)
	}
}

func TestExplainAnalyzeShowsCSERecomputation(t *testing.T) {
	e := engine.New(tpcd.Generate(tpcd.Config{SF: 0.1, Seed: 42}))
	p, err := e.Prepare(tpcd.Query1, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	// The supplementary table is referenced twice and recomputed.
	if !regexp.MustCompile(`\[SUPP\]\s+evals=2`).MatchString(out) {
		t.Errorf("SUPP recomputation not visible:\n%s", out)
	}
	// With materialization the second reference is served from cache.
	e.MaterializeCSE = true
	p, err = e.Prepare(tpcd.Query1, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	out, err = p.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	if !regexp.MustCompile(`\[SUPP\]\s+evals=1`).MatchString(out) {
		t.Errorf("materialized SUPP should evaluate once:\n%s", out)
	}
}

func TestExplainAnalyzeMagicHasNoRepeatedSubquery(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.Prepare(tpcd.ExampleQuery, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.ExplainAnalyze()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "GROUPBY") && !strings.Contains(line, "evals=1") {
			t.Errorf("decorrelated aggregate evaluated more than once: %s", line)
		}
	}
}
