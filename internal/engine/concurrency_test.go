package engine_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/tpcd"
)

// Satellite: Engine.views was a plain map mutated by CreateView/DropView
// while Query binds read it — a data race under concurrent clients. The
// map is now copy-on-write behind a lock; this test drives DDL and
// queries from many goroutines and must pass under -race.
func TestConcurrentViewDDLAndQueries(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	if err := e.CreateView("create view stable as select name from emp where building = 'B1'"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	// Writers: create and drop per-goroutine views in a loop.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("scratch%d", w)
			for i := 0; i < 50; i++ {
				ddl := fmt.Sprintf("create view %s as select name from dept where budget < %d", name, 1000*(i+1))
				if err := e.CreateView(ddl); err != nil {
					t.Error(err)
					return
				}
				e.DropView(name)
			}
		}(w)
	}
	// Readers: query base tables and the stable view throughout.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rows, _, err := e.Query("select name from stable order by name", engine.NI)
				if err != nil {
					t.Error(err)
					return
				}
				if len(rows) != 2 {
					t.Errorf("stable view returned %d rows, want 2", len(rows))
					return
				}
				if _, _, err := e.Query(tpcd.ExampleQuery, engine.Magic); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Garbage worker counts degrade to a deterministic single-threaded run
// with the same rows — never a panic, never scheduling-dependent output.
func TestNegativeWorkersDeterministic(t *testing.T) {
	db := tpcd.EmpDept()
	ref := engine.New(db)
	ref.Workers = 1
	want, _ := query(t, ref, tpcd.ExampleQuery, engine.Magic)
	for _, n := range []int{-1, -1000} {
		e := engine.New(db)
		e.Workers = n
		got, _ := query(t, e, tpcd.ExampleQuery, engine.Magic)
		sameRows(t, fmt.Sprintf("workers=%d", n), got, want)
	}
}

// A failed CreateView must leave the view map untouched and the epoch
// unmoved (no cache invalidation storm from rejected DDL).
func TestCreateViewFailureLeavesStateUntouched(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	if err := e.CreateView("create view good as select name from emp"); err != nil {
		t.Fatal(err)
	}
	epoch := e.Epoch()
	err := e.CreateView("create view bad as select nosuchcol from emp")
	if err == nil {
		t.Fatal("invalid view accepted")
	}
	if e.Epoch() != epoch {
		t.Fatal("failed CreateView bumped the epoch")
	}
	if _, _, err := e.Query("select name from good", engine.NI); err != nil {
		t.Fatalf("pre-existing view lost after failed DDL: %v", err)
	}
	if _, _, qerr := e.Query("select * from bad", engine.NI); qerr == nil ||
		!strings.Contains(qerr.Error(), "bad") {
		t.Fatalf("failed view resolvable: %v", qerr)
	}
}
