package engine_test

import (
	"fmt"
	"math/rand"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
)

// randDB builds a small random two-table database. Value domains are tiny
// so that duplicates, empty correlation groups, and NULLs all occur.
func randDB(r *rand.Rand) *storage.DB {
	db := storage.NewDB()
	t1 := db.Create(schema.NewTable("t1",
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "a", Type: schema.TInt},
		schema.Column{Name: "b", Type: schema.TInt},
		schema.Column{Name: "c", Type: schema.TString},
	).AddKey("id"))
	t2 := db.Create(schema.NewTable("t2",
		schema.Column{Name: "id2", Type: schema.TInt},
		schema.Column{Name: "d", Type: schema.TInt},
		schema.Column{Name: "e", Type: schema.TInt},
		schema.Column{Name: "f", Type: schema.TString},
	).AddKey("id2"))
	maybeNullInt := func(max int, pNull float64) sqltypes.Value {
		if r.Float64() < pNull {
			return sqltypes.Null
		}
		return sqltypes.NewInt(int64(r.Intn(max)))
	}
	n1 := 3 + r.Intn(15)
	for i := 0; i < n1; i++ {
		err := t1.Insert(storage.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(r.Intn(8))),
			maybeNullInt(11, 0.15),
			sqltypes.NewString(string(rune('p' + r.Intn(3)))),
		})
		if err != nil {
			panic(err)
		}
	}
	n2 := r.Intn(25)
	for i := 0; i < n2; i++ {
		err := t2.Insert(storage.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(r.Intn(10))), // some t1.a values unmatched
			maybeNullInt(11, 0.2),
			sqltypes.NewString(string(rune('p' + r.Intn(3)))),
		})
		if err != nil {
			panic(err)
		}
	}
	if r.Intn(2) == 0 {
		if err := t2.CreateIndex("d"); err != nil {
			panic(err)
		}
	}
	return db
}

var cmps = []string{"=", "<>", "<", "<=", ">", ">="}
var aggs = []string{"count", "sum", "min", "max", "avg"}

// randQuery emits a random correlated query from a template family.
func randQuery(r *rand.Rand) string {
	cmp := func() string { return cmps[r.Intn(len(cmps))] }
	agg := func() string { return aggs[r.Intn(len(aggs))] }
	konst := func() int { return r.Intn(11) }
	switch r.Intn(9) {
	case 0: // scalar aggregate in WHERE
		return fmt.Sprintf(`
			select id, a, b from t1
			where b %s (select %s(e) from t2 where t2.d = t1.a)`, cmp(), agg())
	case 1: // scalar aggregate with extra inner predicate
		return fmt.Sprintf(`
			select id, a from t1
			where b %s (select %s(e) from t2 where t2.d = t1.a and e %s %d)`,
			cmp(), agg(), cmp(), konst())
	case 2: // EXISTS / NOT EXISTS
		not := ""
		if r.Intn(2) == 0 {
			not = "not "
		}
		return fmt.Sprintf(`
			select id, a from t1
			where %sexists (select * from t2 where d = t1.a and e %s %d)`,
			not, cmp(), konst())
	case 3: // IN / NOT IN
		not := ""
		if r.Intn(2) == 0 {
			not = "not "
		}
		return fmt.Sprintf(`
			select id from t1
			where b %sin (select e from t2 where d = t1.a)`, not)
	case 4: // scalar subquery in the select list
		return fmt.Sprintf(`
			select id, (select %s(e) from t2 where d = t1.a) from t1`, agg())
	case 5: // lateral derived table
		return fmt.Sprintf(`
			select t1.id, x.v from t1,
			  (select %s(e) from t2 where d = t1.a) as x(v)
			where t1.b %s %d or t1.b is null`, agg(), cmp(), konst())
	case 6: // multi-level correlation
		return fmt.Sprintf(`
			select id from t1
			where b %s (select count(*) from t2
			            where d = t1.a and exists
			              (select * from t2 u where u.d = t1.a and u.e %s t2.e))`,
			cmp(), cmp())
	case 8: // correlated INTERSECT/EXCEPT in a lateral table expression
		op := "intersect"
		if r.Intn(2) == 0 {
			op = "except"
		}
		all := ""
		if r.Intn(2) == 0 {
			all = " all"
		}
		return fmt.Sprintf(`
			select t1.id, x.v from t1,
			  (select count(q) from
			    ((select e from t2 where d = t1.a)
			     %s%s
			     (select e from t2 where d = t1.a and e %s %d)) as u(q)
			  ) as x(v)`, op, all, cmp(), konst())
	case 7: // correlated UNION in a lateral table expression
		return fmt.Sprintf(`
			select t1.id, x.v from t1,
			  (select sum(q) from
			    ((select e from t2 where d = t1.a)
			     union all
			     (select %d from t2 where d = t1.a and e %s %d)) as u(q)
			  ) as x(v)`, konst(), cmp(), konst())
	}
	panic("unreachable")
}

// TestRandomizedDifferential cross-checks magic decorrelation (and the
// memoized baseline) against nested iteration on hundreds of random
// correlated queries over random data.
func TestRandomizedDifferential(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 60
	}
	for seed := 0; seed < iters; seed++ {
		r := rand.New(rand.NewSource(int64(seed)))
		db := randDB(r)
		sql := randQuery(r)
		e := engine.New(db)
		want, _, err := e.Query(sql, engine.NI)
		if err != nil {
			t.Fatalf("seed %d: NI failed on\n%s\n%v", seed, sql, err)
		}
		for _, s := range []engine.Strategy{engine.NIMemo, engine.Magic, engine.OptMagic} {
			got, _, err := e.Query(sql, s)
			if err != nil {
				t.Fatalf("seed %d: %s failed on\n%s\n%v", seed, s, sql, err)
			}
			g, w := multiset(got), multiset(want)
			if len(g) != len(w) {
				t.Fatalf("seed %d: %s returned %d rows, NI %d on\n%s\ngot  %v\nwant %v",
					seed, s, len(g), len(w), sql, g, w)
			}
			for i := range g {
				if g[i] != w[i] {
					t.Fatalf("seed %d: %s row %d = %q, NI %q on\n%s", seed, s, i, g[i], w[i], sql)
				}
			}
		}
	}
}
