package engine_test

import (
	"strings"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// ordered renders rows without sorting: the parallel-determinism contract
// is about engine output *order*, not just bag contents.
func ordered(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// TestStrategiesDeterministicAcrossWorkers runs every strategy on the
// paper's workload at workers 1, 2, and 8, asserting identical rows in
// identical order. This is the engine-level face of the executor's
// parallel-determinism guarantee; together with the exec-level test it
// pins union dedup, group merge, and join emission order.
func TestStrategiesDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-strategy parallel sweep is slow under -race")
	}
	db := tpcd.Generate(tpcd.Config{SF: 0.05, Seed: 42})
	cases := []struct {
		name, sql  string
		strategies []engine.Strategy
	}{
		{"Example", tpcd.ExampleQuery, []engine.Strategy{engine.NI, engine.NIMemo, engine.Dayal, engine.GanskiWong, engine.Magic, engine.OptMagic, engine.Auto}},
		{"Query1", tpcd.Query1, []engine.Strategy{engine.NI, engine.NIMemo, engine.Kim, engine.Magic, engine.OptMagic}},
		{"Query2", tpcd.Query2, []engine.Strategy{engine.NI, engine.Magic, engine.OptMagic}},
		{"Query3", tpcd.Query3, []engine.Strategy{engine.NI, engine.Magic, engine.OptMagic}},
	}
	exDB := tpcd.EmpDept()
	for _, c := range cases {
		for _, s := range c.strategies {
			t.Run(c.name+"/"+s.String(), func(t *testing.T) {
				d := db
				if c.name == "Example" {
					d = exDB
				}
				e := engine.New(d)
				e.Workers = 1
				p, err := e.Prepare(c.sql, s)
				if err != nil {
					t.Fatalf("prepare: %v", err)
				}
				rows, _, err := p.Run()
				if err != nil {
					t.Fatalf("workers=1: %v", err)
				}
				want := ordered(rows)
				for _, w := range []int{2, 8} {
					ew := engine.New(d)
					ew.Workers = w
					pw, err := ew.Prepare(c.sql, s)
					if err != nil {
						t.Fatalf("prepare workers=%d: %v", w, err)
					}
					rowsW, _, err := pw.Run()
					if err != nil {
						t.Fatalf("workers=%d: %v", w, err)
					}
					got := ordered(rowsW)
					if len(got) != len(want) {
						t.Fatalf("workers=%d: %d rows, want %d", w, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("workers=%d row %d: got %q want %q", w, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}
