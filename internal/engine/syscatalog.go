package engine

import (
	"strings"
	"time"

	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/trace"
)

// MountSystemCatalog registers the sys.* introspection tables in the
// engine's database and enables the query registry (with the default log
// capacity) if it is not already enabled. The tables are synthetic
// read-only relations (storage.CreateSynthetic) whose rows are produced at
// every scan, so a plain SELECT — including one inside a correlated or
// decorrelated subquery — always sees live state:
//
//	sys.metrics        one row per counter/gauge in trace.Metrics
//	sys.histograms     one row per latency histogram (count/sum/min/max/p50/p95/p99)
//	sys.active_queries one row per currently running query, with live progress
//	sys.plan_cache     one row per plan-cache shard (empty when disabled)
//	sys.query_log      one row per completed query in the registry's ring
//
// Mounting is opt-in and per-database: engines sharing a DB share the
// tables, and the differential/fuzz harnesses that build their own
// databases never see them. Call it before the engine is shared, like the
// other knobs; mounting twice replaces the definitions harmlessly.
func (e *Engine) MountSystemCatalog() {
	if e.registry == nil {
		e.EnableRegistry(0)
	}
	e.DB.CreateSynthetic(schema.NewTable("sys.metrics",
		schema.Column{Name: "name", Type: schema.TString},
		schema.Column{Name: "kind", Type: schema.TString},
		schema.Column{Name: "value", Type: schema.TInt},
	), metricsRows)
	e.DB.CreateSynthetic(schema.NewTable("sys.histograms",
		schema.Column{Name: "name", Type: schema.TString},
		// "observations", not "count": COUNT is an aggregate-function
		// token, so a column of that name could not be referenced bare.
		schema.Column{Name: "observations", Type: schema.TInt},
		schema.Column{Name: "sum_ns", Type: schema.TInt},
		schema.Column{Name: "min_ns", Type: schema.TInt},
		schema.Column{Name: "max_ns", Type: schema.TInt},
		schema.Column{Name: "p50_ns", Type: schema.TFloat},
		schema.Column{Name: "p95_ns", Type: schema.TFloat},
		schema.Column{Name: "p99_ns", Type: schema.TFloat},
	), histogramRows)
	e.DB.CreateSynthetic(schema.NewTable("sys.active_queries",
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "query", Type: schema.TString},
		schema.Column{Name: "strategy", Type: schema.TString},
		schema.Column{Name: "started_at", Type: schema.TString},
		schema.Column{Name: "elapsed_ns", Type: schema.TInt},
		schema.Column{Name: "rows_scanned", Type: schema.TInt},
		schema.Column{Name: "rows_joined", Type: schema.TInt},
		schema.Column{Name: "rows_grouped", Type: schema.TInt},
		schema.Column{Name: "subquery_invocations", Type: schema.TInt},
	), e.activeQueryRows)
	e.DB.CreateSynthetic(schema.NewTable("sys.plan_cache",
		schema.Column{Name: "shard", Type: schema.TInt},
		schema.Column{Name: "entries", Type: schema.TInt},
		schema.Column{Name: "capacity", Type: schema.TInt},
	), e.planCacheRows)
	e.DB.CreateSynthetic(schema.NewTable("sys.query_log",
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "query", Type: schema.TString},
		schema.Column{Name: "strategy", Type: schema.TString},
		schema.Column{Name: "started_at", Type: schema.TString},
		schema.Column{Name: "duration_ns", Type: schema.TInt},
		schema.Column{Name: "rows_out", Type: schema.TInt},
		schema.Column{Name: "error", Type: schema.TString},
		schema.Column{Name: "budget_trip", Type: schema.TString},
		schema.Column{Name: "rows_scanned", Type: schema.TInt},
		schema.Column{Name: "rows_joined", Type: schema.TInt},
		schema.Column{Name: "rows_grouped", Type: schema.TInt},
	), e.queryLogRows)
}

// metricsRows materializes sys.metrics: the process-wide counters and
// gauges, sorted by name (histograms appear in sys.histograms instead).
func metricsRows() []storage.Row {
	s := trace.Metrics.Snapshot()
	rows := make([]storage.Row, 0, len(s))
	for _, n := range s.Names() {
		kind, name := "counter", n
		if strings.HasPrefix(n, "gauge:") {
			kind, name = "gauge", strings.TrimPrefix(n, "gauge:")
		} else if strings.HasPrefix(n, "hist:") {
			continue
		}
		rows = append(rows, storage.Row{
			sqltypes.NewString(name),
			sqltypes.NewString(kind),
			sqltypes.NewInt(s[n]),
		})
	}
	return rows
}

// histogramRows materializes sys.histograms, sorted by name.
func histogramRows() []storage.Row {
	hists := trace.Metrics.Histograms()
	rows := make([]storage.Row, 0, len(hists))
	for _, nh := range hists {
		s := nh.Hist.Snapshot()
		rows = append(rows, storage.Row{
			sqltypes.NewString(nh.Name),
			sqltypes.NewInt(s.Count),
			sqltypes.NewInt(s.Sum),
			sqltypes.NewInt(s.Min),
			sqltypes.NewInt(s.Max),
			sqltypes.NewFloat(s.P50),
			sqltypes.NewFloat(s.P95),
			sqltypes.NewFloat(s.P99),
		})
	}
	return rows
}

// activeQueryRows materializes sys.active_queries. The scan itself runs
// inside a registered query, so the observing SELECT appears in its own
// output — which is correct (it is active) and also guarantees the table
// is never empty when scanned through the engine.
func (e *Engine) activeQueryRows() []storage.Row {
	if e.registry == nil {
		return nil
	}
	active := e.registry.Active()
	rows := make([]storage.Row, 0, len(active))
	for _, q := range active {
		rows = append(rows, storage.Row{
			sqltypes.NewInt(q.ID),
			sqltypes.NewString(q.Text),
			sqltypes.NewString(q.Strategy.String()),
			sqltypes.NewString(q.Start.UTC().Format(time.RFC3339Nano)),
			sqltypes.NewInt(time.Since(q.Start).Nanoseconds()),
			sqltypes.NewInt(q.Progress.RowsScanned),
			sqltypes.NewInt(q.Progress.RowsJoined),
			sqltypes.NewInt(q.Progress.RowsGrouped),
			sqltypes.NewInt(q.Progress.SubqueryInvocations),
		})
	}
	return rows
}

// planCacheRows materializes sys.plan_cache: one row per shard, empty
// when no cache is attached.
func (e *Engine) planCacheRows() []storage.Row {
	cache := e.planCache
	if cache == nil {
		return nil
	}
	stats := cache.ShardStats()
	rows := make([]storage.Row, 0, len(stats))
	for i, s := range stats {
		rows = append(rows, storage.Row{
			sqltypes.NewInt(int64(i)),
			sqltypes.NewInt(int64(s.Entries)),
			sqltypes.NewInt(int64(s.Capacity)),
		})
	}
	return rows
}

// queryLogRows materializes sys.query_log, oldest completed query first.
func (e *Engine) queryLogRows() []storage.Row {
	if e.registry == nil {
		return nil
	}
	log := e.registry.Log()
	rows := make([]storage.Row, 0, len(log))
	for _, q := range log {
		rows = append(rows, storage.Row{
			sqltypes.NewInt(q.ID),
			sqltypes.NewString(q.Text),
			sqltypes.NewString(q.Strategy.String()),
			sqltypes.NewString(q.Start.UTC().Format(time.RFC3339Nano)),
			sqltypes.NewInt(q.Duration.Nanoseconds()),
			sqltypes.NewInt(int64(q.RowsOut)),
			sqltypes.NewString(q.Err),
			sqltypes.NewString(q.Trip),
			sqltypes.NewInt(q.Progress.RowsScanned),
			sqltypes.NewInt(q.Progress.RowsJoined),
			sqltypes.NewInt(q.Progress.RowsGrouped),
		})
	}
	return rows
}
