package engine_test

import (
	"testing"

	"decorr/internal/engine"
	"decorr/internal/tpcd"
)

// The §7 plan choice: Auto optimizes twice and keeps the cheaper plan.
func TestAutoChoosesPerQuery(t *testing.T) {
	db := tpcd.Generate(tpcd.Config{SF: 0.1, Seed: 42})
	e := engine.New(db)

	// Query 2: cheap indexed subquery, key correlation — nested iteration
	// should win (Figure 8's "decorrelation unnecessary" case). Since the
	// winning NI plan still contains a correlated subquery, Auto executes
	// it with runtime batching: Chosen is NIBatch, which runs the same
	// graph with the batched executor (bit-identical rows).
	p2, err := e.Prepare(tpcd.Query2, engine.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Chosen != engine.NIBatch {
		t.Errorf("Query 2: Auto chose %s (cost %.0f), expected NIBatch", p2.Chosen, p2.EstimatedCost)
	}

	// Query 1(c): the index the subquery probes is gone; each invocation
	// is a full scan and decorrelation must win (Figure 7).
	noIdx := tpcd.Generate(tpcd.Config{SF: 0.1, Seed: 42})
	if err := noIdx.MustTable("partsupp").DropIndex("ps_partkey"); err != nil {
		t.Fatal(err)
	}
	e2 := engine.New(noIdx)
	p7, err := e2.Prepare(tpcd.Query1b, engine.Auto)
	if err != nil {
		t.Fatal(err)
	}
	if p7.Chosen != engine.OptMagic {
		t.Errorf("Query 1(c): Auto chose %s (cost %.0f), expected OptMagic", p7.Chosen, p7.EstimatedCost)
	}
}

func TestAutoAlwaysCorrect(t *testing.T) {
	db := tpcd.Generate(tpcd.Config{SF: 0.05, Seed: 11})
	e := engine.New(db)
	for _, sql := range []string{tpcd.Query1, tpcd.Query1b, tpcd.Query2, tpcd.Query3, tpcd.ExampleQuery} {
		if sql == tpcd.ExampleQuery {
			e = engine.New(tpcd.EmpDept())
		}
		want, _ := query(t, e, sql, engine.NI)
		got, _ := query(t, e, sql, engine.Auto)
		sameRows(t, "Auto vs NI on "+sql[:30], got, want)
	}
}

func TestAutoCostOrderingMatchesReality(t *testing.T) {
	// On the index-dropped workload, the estimated NI cost must exceed
	// the estimated decorrelated cost by a wide margin — the estimator
	// needs to see the full-scan-per-invocation blowup.
	db := tpcd.Generate(tpcd.Config{SF: 0.1, Seed: 42})
	if err := db.MustTable("partsupp").DropIndex("ps_partkey"); err != nil {
		t.Fatal(err)
	}
	e := engine.New(db)
	ni, err := e.Prepare(tpcd.Query1b, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	mag, err := e.Prepare(tpcd.Query1b, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	if ni.EstimatedCost < 10*mag.EstimatedCost {
		t.Errorf("estimator missed the blowup: NI=%.0f Magic=%.0f", ni.EstimatedCost, mag.EstimatedCost)
	}
}
