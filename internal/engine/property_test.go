package engine_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"decorr/internal/engine"
)

// SQL-level algebraic laws, checked on random databases under every
// decorrelation strategy that applies. These complement the differential
// tests: instead of comparing strategies to each other, they compare each
// strategy to what SQL semantics demand.
func TestAlgebraicProperties(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for seed := 0; seed < iters; seed++ {
		r := rand.New(rand.NewSource(int64(1000 + seed)))
		db := randDB(r)
		e := engine.New(db)
		cmp := cmps[r.Intn(len(cmps))]
		k := r.Intn(11)
		pred := fmt.Sprintf("b %s %d", cmp, k)

		countOf := func(sql string) int {
			rows, _, err := e.Query(sql, engine.NI)
			if err != nil {
				t.Fatalf("seed %d: %q: %v", seed, sql, err)
			}
			return len(rows)
		}
		scalarOf := func(sql string) string {
			rows, _, err := e.Query(sql, engine.NI)
			if err != nil {
				t.Fatalf("seed %d: %q: %v", seed, sql, err)
			}
			if len(rows) != 1 {
				t.Fatalf("seed %d: %q returned %d rows", seed, sql, len(rows))
			}
			return rows[0][0].String()
		}

		// COUNT(*) == cardinality of the bare select.
		n := countOf("select id from t1 where " + pred)
		if got := scalarOf("select count(*) from t1 where " + pred); got != fmt.Sprint(n) {
			t.Fatalf("seed %d: count(*) = %s, want %d (pred %q)", seed, got, n, pred)
		}

		// UNION ALL counts add.
		a := countOf("select a from t1")
		b := countOf("select d from t2")
		if u := countOf("select a from t1 union all select d from t2"); u != a+b {
			t.Fatalf("seed %d: union all %d != %d + %d", seed, u, a, b)
		}

		// EXCEPT ALL and INTERSECT ALL partition the left side.
		i := countOf("select a from t1 intersect all select d from t2")
		x := countOf("select a from t1 except all select d from t2")
		if i+x != a {
			t.Fatalf("seed %d: intersect all (%d) + except all (%d) != |left| (%d)", seed, i, x, a)
		}

		// DISTINCT never increases cardinality; UNION dedups UNION ALL.
		ad := countOf("select distinct a from t1")
		if ad > a {
			t.Fatalf("seed %d: distinct grew: %d > %d", seed, ad, a)
		}
		ud := countOf("select a from t1 union select d from t2")
		if ud > a+b {
			t.Fatalf("seed %d: union exceeded union all", seed)
		}

		// ORDER BY preserves the multiset.
		plain, _, err := e.Query("select a, b from t1", engine.NI)
		if err != nil {
			t.Fatal(err)
		}
		ordered, _, err := e.Query("select a, b from t1 order by b desc, a", engine.NI)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(multiset(plain), ";") != strings.Join(multiset(ordered), ";") {
			t.Fatalf("seed %d: ORDER BY changed the multiset", seed)
		}

		// EXISTS(S) row count + NOT EXISTS(S) row count == |outer|, per
		// strategy (two-valued existential semantics).
		exq := "select id from t1 where exists (select * from t2 where d = t1.a)"
		nexq := "select id from t1 where not exists (select * from t2 where d = t1.a)"
		total := countOf("select id from t1")
		for _, s := range []engine.Strategy{engine.NI, engine.Magic} {
			er, _, err := e.Query(exq, s)
			if err != nil {
				t.Fatal(err)
			}
			nr, _, err := e.Query(nexq, s)
			if err != nil {
				t.Fatal(err)
			}
			if len(er)+len(nr) != total {
				t.Fatalf("seed %d/%s: EXISTS %d + NOT EXISTS %d != %d", seed, s, len(er), len(nr), total)
			}
		}

		// The correlated COUNT subquery in output position always returns
		// a row per outer tuple, with a non-negative count.
		rows, _, err := e.Query("select id, (select count(*) from t2 where d = t1.a) from t1", engine.Magic)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != total {
			t.Fatalf("seed %d: scalar COUNT changed outer cardinality: %d != %d", seed, len(rows), total)
		}
		for _, row := range rows {
			if row[1].IsNull() || row[1].I < 0 {
				t.Fatalf("seed %d: COUNT produced %v", seed, row[1])
			}
		}
	}
}
