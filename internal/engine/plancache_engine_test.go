package engine_test

import (
	"fmt"
	"sync"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/sqltypes"
	"decorr/internal/tpcd"
	"decorr/internal/trace"
)

// counterDelta measures how much a process-wide metric moves across f.
// The metric tests must not run in parallel with each other.
func counterDelta(name string, f func()) int64 {
	before := trace.Metrics.Counter(name).Value()
	f()
	return trace.Metrics.Counter(name).Value() - before
}

// Satellite: Exec used to parse every statement twice (once to classify
// it, once inside CreateView/Prepare). Pin the fix with the parse metric.
func TestExecParsesOnce(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	if d := counterDelta("engine.parses", func() {
		if _, _, err := e.Exec("select name from emp", engine.NI); err != nil {
			t.Fatal(err)
		}
	}); d != 1 {
		t.Fatalf("query Exec parsed %d times, want 1", d)
	}
	if d := counterDelta("engine.parses", func() {
		if _, _, err := e.Exec("create view pv as select name from emp", engine.NI); err != nil {
			t.Fatal(err)
		}
	}); d != 1 {
		t.Fatalf("CREATE VIEW Exec parsed %d times, want 1", d)
	}
	// Auto prepares two plans but still parses once.
	if d := counterDelta("engine.parses", func() {
		if _, _, err := e.Exec(tpcd.ExampleQuery, engine.Auto); err != nil {
			t.Fatal(err)
		}
	}); d != 1 {
		t.Fatalf("Auto Exec parsed %d times, want 1", d)
	}
}

// Tentpole acceptance: with the cache warm, re-executing a statement
// skips parse, semant, and rewrite entirely — engine.prepares and
// engine.parses stay flat while plancache.hits climbs.
func TestWarmExecSkipsPreparation(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.EnablePlanCache(64)
	const q = "select name from emp where building = ?"
	cold, _, err := e.ExecParams(q, engine.Magic, []sqltypes.Value{str("B1")})
	if err != nil {
		t.Fatal(err)
	}
	var warm []string
	parses := counterDelta("engine.parses", func() {
		prepares := counterDelta("engine.prepares", func() {
			hits := counterDelta("plancache.hits", func() {
				for i := 0; i < 5; i++ {
					rows, _, err := e.ExecParams(q, engine.Magic, []sqltypes.Value{str("B1")})
					if err != nil {
						t.Fatal(err)
					}
					warm = multiset(rows)
				}
			})
			if hits != 5 {
				t.Fatalf("plancache.hits moved %d, want 5", hits)
			}
		})
		if prepares != 0 {
			t.Fatalf("engine.prepares moved %d on warm executions, want 0", prepares)
		}
	})
	if parses != 0 {
		t.Fatalf("engine.parses moved %d on warm executions, want 0", parses)
	}
	sameRows(t, "warm == cold", warm, multiset(cold))
}

// A reformatted spelling of a cached query must hit via the normalized
// key: one extra parse to discover the normal form, but no new prepare.
func TestCacheNormalizedSpelling(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.EnablePlanCache(64)
	if _, _, err := e.Exec("select name from emp where building = 'B1'", engine.NI); err != nil {
		t.Fatal(err)
	}
	if d := counterDelta("engine.prepares", func() {
		if _, _, err := e.Exec("SELECT  name\nFROM emp  WHERE building = 'B1'", engine.NI); err != nil {
			t.Fatal(err)
		}
	}); d != 0 {
		t.Fatalf("reformatted spelling re-prepared (%d), want normalized-key hit", d)
	}
	// And the second spelling is now cached verbatim: no parse either.
	if d := counterDelta("engine.parses", func() {
		if _, _, err := e.Exec("SELECT  name\nFROM emp  WHERE building = 'B1'", engine.NI); err != nil {
			t.Fatal(err)
		}
	}); d != 0 {
		t.Fatalf("second spelling not cached under its raw text (%d parses)", d)
	}
}

// Different strategies and knob settings must not share plans.
func TestCacheKeySeparatesStrategiesAndKnobs(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.EnablePlanCache(64)
	q := tpcd.ExampleQuery
	ni, _, err := e.Exec(q, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	mag, _, err := e.Exec(q, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "strategy-keyed", multiset(mag), multiset(ni))
	if d := counterDelta("engine.prepares", func() {
		e.MagicSets = true
		if _, _, err := e.Exec(q, engine.Magic); err != nil {
			t.Fatal(err)
		}
		e.MagicSets = false
	}); d == 0 {
		t.Fatal("MagicSets flip served the old plan")
	}
}

// Stale-plan invalidation: after view DDL, cached plans that inlined the
// old definition must not be served.
func TestCacheInvalidatedByViewDDL(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.EnablePlanCache(64)
	if err := e.CreateView("create view vb as select name from emp where building = 'B1'"); err != nil {
		t.Fatal(err)
	}
	epoch := e.Epoch()
	rows, _, err := e.Exec("select name from vb", engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "v1", multiset(rows), []string{"anne", "bob"})
	// Redefine the view; the epoch must move and the next execution must
	// see the new definition, not the cached plan.
	if err := e.CreateView("create view vb as select name from emp where building = 'B3'"); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() == epoch {
		t.Fatal("CreateView did not bump the epoch")
	}
	inval := counterDelta("plancache.invalidations", func() {
		rows, _, err = e.Exec("select name from vb", engine.NI)
		if err != nil {
			t.Fatal(err)
		}
	})
	sameRows(t, "v2", multiset(rows), []string{"fay"})
	if inval == 0 {
		t.Fatal("stale plan was not counted as invalidated")
	}
	// DropView also bumps: the query must now fail instead of serving the
	// cached plan for the dropped view.
	e.DropView("vb")
	if _, _, err := e.Exec("select name from vb", engine.NI); err == nil {
		t.Fatal("query over dropped view served from cache")
	}
}

// A tracer opts out of the cache: every traced run must go through the
// full pipeline (the trace serialization contract).
func TestTracerBypassesCache(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.EnablePlanCache(64)
	if _, _, err := e.Exec(tpcd.ExampleQuery, engine.Magic); err != nil {
		t.Fatal(err)
	}
	ring := trace.NewRingSink(0)
	e.Tracer = trace.New(ring)
	if d := counterDelta("engine.prepares", func() {
		if _, _, err := e.Exec(tpcd.ExampleQuery, engine.Magic); err != nil {
			t.Fatal(err)
		}
	}); d == 0 {
		t.Fatal("traced execution served a cached plan")
	}
	for _, want := range []string{"parse", "semant", "execute"} {
		found := false
		for _, ev := range ring.Events() {
			if ev.Name == want {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("traced cached-engine run missing %q span", want)
		}
	}
}

// Many goroutines hammering one cached engine with a mix of parameterized
// statements: results must match an uncached engine (run with -race).
func TestCachedEngineConcurrentClients(t *testing.T) {
	db := tpcd.EmpDept()
	cachedE := engine.New(db)
	cachedE.EnablePlanCache(32)
	plainE := engine.New(db)
	queries := []string{
		"select name from emp where building = ?",
		"select name from dept where budget < ? order by name",
		tpcd.ExampleQuery,
	}
	params := [][]sqltypes.Value{
		{str("B2")},
		{intv(10000)},
		nil,
	}
	want := make([][]string, len(queries))
	for i := range queries {
		rows, _, err := plainE.ExecParams(queries[i], engine.Magic, params[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = multiset(rows)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				k := (w + i) % len(queries)
				rows, _, err := cachedE.ExecParams(queries[k], engine.Magic, params[k])
				if err != nil {
					t.Error(err)
					return
				}
				got := multiset(rows)
				if fmt.Sprint(got) != fmt.Sprint(want[k]) {
					t.Errorf("query %d: got %v want %v", k, got, want[k])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
