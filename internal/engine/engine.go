// Package engine is the facade tying the stack together: SQL text is
// parsed, bound to a QGM, rewritten according to the chosen decorrelation
// strategy, cleaned up, and executed. The benchmark harness and the public
// API both sit on top of this package.
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"decorr/internal/ast"
	"decorr/internal/classic"
	"decorr/internal/core"
	"decorr/internal/exec"
	"decorr/internal/parser"
	"decorr/internal/plancache"
	"decorr/internal/qgm"
	"decorr/internal/rewrite"
	"decorr/internal/semant"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/trace"
)

// Strategy selects how (whether) a correlated query is decorrelated before
// execution — the five algorithms of the paper's §5.1 plus the memoized
// and runtime-batched nested-iteration baselines.
type Strategy int

const (
	// NI executes the query as written: correlated subqueries are invoked
	// per outer tuple (System R nested iteration).
	NI Strategy = iota
	// NIMemo is nested iteration with a per-binding result cache.
	NIMemo
	// Kim applies Kim's method [Kim82]. It faithfully reproduces the
	// historical COUNT bug.
	Kim
	// Dayal applies Dayal's method [Day87]: merge via left outer join,
	// group by a key of the outer relations.
	Dayal
	// GanskiWong applies the Ganski/Wong method [GW87], the single-table
	// special case of magic decorrelation.
	GanskiWong
	// Magic applies magic decorrelation (the paper's algorithm).
	Magic
	// OptMagic is magic decorrelation with the supplementary-table
	// common-subexpression elimination (OptMag in §5.1).
	OptMagic
	// Auto optimizes the query twice — once as written, once magic
	// decorrelated — estimates both plans, and keeps the cheaper (§7:
	// "The better of the two optimized plans is chosen"). When the NI
	// plan wins and still contains correlated subqueries, Auto executes
	// it with runtime batching (NIBatch) — the mid-point between full
	// nested iteration and full rewrite.
	Auto
	// NIBatch is nested iteration with runtime subquery batching: the
	// graph runs as bound (no rewrite), but correlated subqueries
	// evaluate set-at-a-time over the distinct outer bindings — once per
	// distinct binding in general, exactly once as a decorrelated
	// partition/probe when the correlation is root-level equalities only.
	// Rows, ordering, and typed errors are identical to NI; the fan-out
	// collapse shows up in Stats.BatchExecutions. Appended after Auto so
	// existing strategy fingerprints (plan-cache keys, wire codes) keep
	// their values.
	NIBatch
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case NI:
		return "NI"
	case NIMemo:
		return "NIMemo"
	case Kim:
		return "Kim"
	case Dayal:
		return "Dayal"
	case GanskiWong:
		return "GW"
	case Magic:
		return "Mag"
	case OptMagic:
		return "OptMag"
	case Auto:
		return "Auto"
	case NIBatch:
		return "NIBatch"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Strategies lists all strategies in presentation order.
var Strategies = []Strategy{NI, NIMemo, NIBatch, Kim, Dayal, GanskiWong, Magic, OptMagic, Auto}

// Engine prepares and runs queries against one database.
type Engine struct {
	DB *storage.DB
	// MaterializeCSE lets the executor cache shared uncorrelated boxes —
	// the optimizer improvement the paper wishes for in §5.3 (ablation
	// knob; Starburst recomputed).
	MaterializeCSE bool
	// CoreOpts tunes magic decorrelation (§4.4 knobs). The Order field is
	// always overridden with the executor's nested-iteration join order.
	CoreOpts core.Options
	// MagicSets additionally applies classical magic-sets rewriting
	// ([MFPR90], the paper's §7 sibling transformation): derived tables
	// equi-joined into a block are restricted to the distinct join
	// bindings before they aggregate.
	MagicSets bool
	// Workers bounds intra-query parallelism in the executor: 0 means
	// GOMAXPROCS, 1 forces single-threaded execution. Results are
	// bit-identical and identically ordered at every setting.
	Workers int
	// Limits are the per-query resource budgets (deadline, output and
	// intermediate row caps, tracked-byte cap) applied to every execution
	// through this engine. The zero value imposes nothing. Limits are
	// execution-time policy, never planning policy: they are read at each
	// run, are deliberately absent from the plan-cache key, and a plan
	// prepared under one deadline runs correctly under another.
	Limits exec.Limits
	// RowMode forces the row-at-a-time executor, disabling the vectorized
	// columnar engine even for plans it supports. Rows, statistics, and
	// errors are identical either way; the knob exists for benchmarking
	// the two engines against each other and for bisecting a suspected
	// vectorization bug. Like Limits it is execution-time policy, read at
	// each run and absent from the plan-cache key.
	RowMode bool
	// Tracer, when non-nil, threads span/event tracing through the whole
	// pipeline: parse, semant, every rewrite rule, decorrelation steps,
	// and per-box execution. Nil disables tracing at zero cost. Attaching
	// a tracer serializes execution (see exec.Options.Tracer).
	Tracer *trace.Tracer
	// CleanupFactory overrides the cleanup rewrite engine run before and
	// after the strategy rewrite; nil means rewrite.NewCleanup(). The
	// differential harness uses it to re-check strategies with individual
	// cleanup rules disabled.
	CleanupFactory func() *rewrite.Engine

	// viewMu guards views. The map is copy-on-write: DDL builds a fresh
	// map under the write lock and publishes it with one assignment, and a
	// published map is never mutated again, so a bind can keep using the
	// snapshot it took without holding any lock.
	viewMu sync.RWMutex
	views  semant.Views
	// epoch counts view DDL (CreateView/DropView). Cached plans record the
	// epoch they were prepared under and are discarded when it moves, which
	// is how the plan cache invalidates plans that inlined a stale view.
	epoch atomic.Uint64

	// planCache, when non-nil, memoizes Prepared plans across executions.
	// Set it via EnablePlanCache before the engine is shared: the knob
	// fields above are part of the cache key but are read unsynchronized,
	// so the configure-then-share contract of the other knobs applies.
	planCache *plancache.Cache

	// registry, when non-nil, tracks every execution: each run gets a
	// query ID, appears in Registry().Active() with live progress while it
	// runs, can be stopped with Kill, and lands in the query log when it
	// finishes. Set it via EnableRegistry or MountSystemCatalog before the
	// engine is shared (same contract as the knobs above). Nil disables
	// tracking at zero cost.
	registry *Registry
}

// New creates an engine with the paper's default knobs.
func New(db *storage.DB) *Engine {
	return &Engine{DB: db, CoreOpts: core.DefaultOptions(), views: semant.Views{}}
}

// Stage latency histograms, nanoseconds. Package-level so hot paths pay
// one atomic add per observation instead of a registry lookup. The
// per-strategy exec histograms live in a read-only map built once here.
var (
	histParse       = trace.Metrics.Histogram("stage.parse")
	histRewrite     = trace.Metrics.Histogram("stage.rewrite")
	histDecorrelate = trace.Metrics.Histogram("stage.decorrelate")
	histExec        = trace.Metrics.Histogram("stage.exec")
	strategyHists   = func() map[Strategy]*trace.Histogram {
		m := make(map[Strategy]*trace.Histogram, len(Strategies))
		for _, s := range Strategies {
			m[s] = trace.Metrics.Histogram("exec.strategy." + s.String())
		}
		return m
	}()
)

// parseQuery and parseStatement are the engine's only parser entry points;
// both count into engine.parses so redundant parsing is observable (tests
// pin one parse per cold statement and zero on a warm cache hit), and both
// record into the stage.parse latency histogram.
func parseQuery(sql string) (ast.QueryExpr, error) {
	trace.Metrics.Counter("engine.parses").Inc()
	start := time.Now()
	q, err := parser.Parse(sql)
	histParse.Observe(time.Since(start).Nanoseconds())
	return q, err
}

func parseStatement(sql string) (ast.Statement, error) {
	trace.Metrics.Counter("engine.parses").Inc()
	start := time.Now()
	stmt, err := parser.ParseStatement(sql)
	histParse.Observe(time.Since(start).Nanoseconds())
	return stmt, err
}

// viewsSnapshot returns the current view map. The returned map is
// immutable (see viewMu): callers may read it indefinitely without locks.
func (e *Engine) viewsSnapshot() semant.Views {
	e.viewMu.RLock()
	defer e.viewMu.RUnlock()
	return e.views
}

// Epoch reports the view-DDL epoch. It moves on every successful
// CreateView/DropView; plan-cache entries prepared under an older epoch
// are invalidated on their next lookup.
func (e *Engine) Epoch() uint64 { return e.epoch.Load() }

// CreateView registers a named view from a "CREATE VIEW name [(cols)] AS
// query" statement. Views are expanded at bind time (the paper's §2.1
// presents the decorrelated plan as exactly such a view stack).
func (e *Engine) CreateView(sql string) error {
	stmt, err := parseStatement(sql)
	if err != nil {
		return err
	}
	cv, ok := stmt.(*ast.CreateView)
	if !ok {
		return fmt.Errorf("engine: not a CREATE VIEW statement")
	}
	return e.createViewParsed(cv)
}

// createViewParsed installs an already-parsed view definition: validate
// against a copy of the view map, publish the copy, bump the epoch.
func (e *Engine) createViewParsed(cv *ast.CreateView) error {
	name := strings.ToLower(cv.Name)
	// The parser rejects qualified view names in SQL; this guards the
	// programmatic path too. Dotted names address system catalogs
	// (sys.*), and catalog resolution runs before view expansion, so a
	// dotted view would be silently unreachable at best.
	if strings.ContainsRune(name, '.') {
		return fmt.Errorf("engine: view name %q cannot be qualified: dotted names are reserved for system catalogs", name)
	}
	if e.DB.Catalog.Lookup(name) != nil {
		return fmt.Errorf("engine: view %q collides with a base table", name)
	}
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	next := make(semant.Views, len(e.views)+1)
	for k, v := range e.views {
		next[k] = v
	}
	next[name] = &semant.ViewDef{Cols: cv.Cols, Query: cv.Query}
	// Validate eagerly: the definition must bind (it may reference
	// earlier views but not itself), and it must not capture `?`
	// placeholders — a view is shared by statements with unrelated
	// parameter lists, so there is no sound position to bind them to.
	g, err := semant.BindWithViews(cv.Query, e.DB.Catalog, next)
	if err != nil {
		return err
	}
	if g.Params > 0 {
		return fmt.Errorf("engine: view %q must not contain ? parameters", name)
	}
	e.views = next
	e.epoch.Add(1)
	return nil
}

// DropView removes a view if present.
func (e *Engine) DropView(name string) {
	name = strings.ToLower(name)
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	if _, ok := e.views[name]; !ok {
		return
	}
	next := make(semant.Views, len(e.views))
	for k, v := range e.views {
		if k != name {
			next[k] = v
		}
	}
	e.views = next
	e.epoch.Add(1)
}

// Exec runs one statement: CREATE VIEW definitions return (nil, nil, nil);
// queries behave like Query. The statement is parsed exactly once, and not
// at all when the plan cache holds a plan for its text.
func (e *Engine) Exec(sql string, s Strategy) ([]storage.Row, *exec.Stats, error) {
	return e.ExecParamsContext(context.Background(), sql, s, nil)
}

// ExecContext is Exec under a cancellation context: the executor polls ctx
// at every morsel claim and box evaluation, so a cancellation or deadline
// surfaces as exec.ErrCanceled / exec.ErrDeadlineExceeded within one
// morsel of leaf work, at any worker count.
func (e *Engine) ExecContext(ctx context.Context, sql string, s Strategy) ([]storage.Row, *exec.Stats, error) {
	return e.ExecParamsContext(ctx, sql, s, nil)
}

// ExecParams is Exec with values for the statement's `?` placeholders, in
// text order. With the plan cache enabled, a repeat of a statement the
// cache still holds skips parsing, binding, and rewriting entirely — the
// text itself is the fast-path key — so a parameterized statement pays for
// preparation once across all its bindings.
func (e *Engine) ExecParams(sql string, s Strategy, params []sqltypes.Value) ([]storage.Row, *exec.Stats, error) {
	return e.ExecParamsContext(context.Background(), sql, s, params)
}

// ExecParamsContext is ExecParams under a cancellation context.
func (e *Engine) ExecParamsContext(ctx context.Context, sql string, s Strategy, params []sqltypes.Value) ([]storage.Row, *exec.Stats, error) {
	cached := e.cacheable()
	var (
		epoch  uint64
		rawKey string
	)
	if cached {
		epoch = e.epoch.Load()
		rawKey = e.cacheKey(trimStatement(sql), s)
		if v, ok := e.planCache.Get(rawKey, epoch); ok {
			return v.(*Prepared).RunParamsContext(ctx, params)
		}
	}
	sp := e.Tracer.Begin("parse", "engine")
	stmt, err := parseStatement(sql)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	if cv, ok := stmt.(*ast.CreateView); ok {
		return nil, nil, e.createViewParsed(cv)
	}
	q, ok := stmt.(ast.QueryExpr)
	if !ok {
		return nil, nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
	var p *Prepared
	if cached {
		p, err = e.prepareAndCache(rawKey, q, s, epoch)
	} else {
		p, err = e.prepareParsed(q, s, false)
	}
	if err != nil {
		return nil, nil, err
	}
	return p.RunParamsContext(ctx, params)
}

// Prepared is a parsed, rewritten, validated query ready to run.
type Prepared struct {
	Graph    *qgm.Graph
	Strategy Strategy
	Trace    *core.Trace
	Columns  []string
	// Chosen reports which alternative the Auto strategy selected
	// (NI or OptMagic); it equals Strategy otherwise.
	Chosen Strategy
	// EstimatedCost is the optimizer's abstract cost of the chosen plan.
	EstimatedCost float64
	// NumParams is the number of `?` placeholders the statement uses;
	// RunParams must be given exactly that many values.
	NumParams int
	// Text is the statement text the plan was prepared from (the original
	// SQL when available, the AST's normalized rendering otherwise). The
	// panic-isolation path attaches it to trace events so a recovered
	// operator panic identifies the offending query.
	Text   string
	engine *Engine
}

// Prepare parses sql and applies the strategy's rewrite.
func (e *Engine) Prepare(sql string, s Strategy) (*Prepared, error) {
	return e.prepare(sql, nil, s, false)
}

// PrepareTraced is Prepare with rewrite tracing enabled (for Magic and
// OptMagic the trace holds the Figure 2–4 stage snapshots).
func (e *Engine) PrepareTraced(sql string, s Strategy) (*Prepared, error) {
	return e.prepare(sql, nil, s, true)
}

// prepareParsed prepares an already-parsed query (no parse stage, no parse
// span — used by Exec and the plan cache, which parse at most once).
func (e *Engine) prepareParsed(q ast.QueryExpr, s Strategy, traced bool) (*Prepared, error) {
	return e.prepare("", q, s, traced)
}

// prepare dispatches to the pipeline. Exactly one of sql/q is used: when q
// is nil, sql is parsed inside the prepare span (so traces show the full
// pipeline); otherwise the pre-parsed query is bound directly.
func (e *Engine) prepare(sql string, q ast.QueryExpr, s Strategy, traced bool) (*Prepared, error) {
	if s == Auto {
		return e.prepareAuto(sql, q, traced)
	}
	trace.Metrics.Counter("engine.prepares").Inc()
	prep := e.Tracer.Begin("prepare", "engine", trace.Str("strategy", s.String()))
	p, err := e.prepareStagesGuarded(sql, q, s, traced)
	if err != nil {
		trace.Metrics.Counter("engine.prepare_errors").Inc()
		prep.End(trace.Str("error", err.Error()))
		return nil, err
	}
	prep.End()
	return p, nil
}

// queryText picks the text identifying a statement in diagnostics: the
// original SQL when the caller supplied it, the AST's normalized rendering
// otherwise.
func queryText(sql string, q ast.QueryExpr) string {
	if sql != "" {
		return sql
	}
	if q != nil {
		return ast.FormatQuery(q)
	}
	return ""
}

// notePanic records one recovered panic: the engine.panics counter moves
// and, when tracing, an instant event captures the phase, the query text,
// the panic value, and the (truncated) operator stack.
func (e *Engine) notePanic(phase, text string, pe *exec.PanicError) {
	trace.Metrics.Counter("engine.panics").Inc()
	stack := pe.Stack
	const maxStack = 4 << 10
	if len(stack) > maxStack {
		stack = stack[:maxStack]
	}
	e.Tracer.Instant("panic", "engine",
		trace.Str("phase", phase),
		trace.Str("query", text),
		trace.Str("value", fmt.Sprint(pe.Val)),
		trace.Str("stack", string(stack)))
}

// prepareStagesGuarded isolates panics in the prepare pipeline: a rewrite
// or binder bug surfaces as a *exec.PanicError instead of killing the
// process, and the engine (views, plan cache, storage) stays usable.
func (e *Engine) prepareStagesGuarded(sql string, q ast.QueryExpr, s Strategy, traced bool) (p *Prepared, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := &exec.PanicError{Val: r, Stack: debug.Stack()}
			e.notePanic("prepare", queryText(sql, q), pe)
			p, err = nil, pe
		}
	}()
	return e.prepareStages(sql, q, s, traced)
}

// prepareStages runs the pipeline stages under the prepare span.
func (e *Engine) prepareStages(sql string, q ast.QueryExpr, s Strategy, traced bool) (*Prepared, error) {
	if q == nil {
		sp := e.Tracer.Begin("parse", "prepare")
		var err error
		q, err = parseQuery(sql)
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	sp := e.Tracer.Begin("semant", "prepare")
	g, err := semant.BindWithViews(q, e.DB.Catalog, e.viewsSnapshot())
	sp.End()
	if err != nil {
		return nil, err
	}
	p := &Prepared{Graph: g, Strategy: s, Text: queryText(sql, q), engine: e}
	if traced {
		p.Trace = &core.Trace{}
	}
	// Normalize before the strategy rewrite: the paper applied "all
	// Starburst query transformations that were unrelated to
	// decorrelation ... to all queries" (§5.1). Merging trivial wrapper
	// boxes here also lets the FEED stage see aggregate subqueries
	// directly instead of through projection shells.
	if err := e.cleanup(g, "cleanup-pre"); err != nil {
		return nil, err
	}
	decorStart := time.Now()
	switch s {
	case NI, NIMemo, NIBatch:
		// Nested iteration runs the graph as bound; NIMemo and NIBatch
		// differ only in executor options.
	case Kim:
		if err := classic.ApplyKim(g); err != nil {
			return nil, err
		}
	case Dayal:
		if err := classic.ApplyDayal(g); err != nil {
			return nil, err
		}
	case GanskiWong:
		if err := classic.ApplyGanskiWong(g, e.orderer()); err != nil {
			return nil, err
		}
	case Magic, OptMagic:
		opts := e.CoreOpts
		opts.EliminateSupplementary = s == OptMagic
		opts.Order = e.orderer()
		opts.Tracer = e.Tracer
		sp = e.Tracer.Begin("decorrelate", "prepare", trace.Str("strategy", s.String()))
		err := core.Decorrelate(g, opts, p.Trace)
		sp.End()
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", s)
	}
	if s != NI && s != NIMemo && s != NIBatch {
		// stage.decorrelate covers every strategy rewrite (classic methods
		// included); the nested-iteration family does no rewrite and would
		// only pollute the low buckets.
		histDecorrelate.Observe(time.Since(decorStart).Nanoseconds())
	}
	if err := e.cleanup(g, "cleanup-post"); err != nil {
		return nil, err
	}
	if e.MagicSets {
		if err := core.ApplyMagicSets(g, e.orderer()); err != nil {
			return nil, err
		}
		if err := e.cleanup(g, "cleanup-magicsets"); err != nil {
			return nil, err
		}
	}
	if err := qgm.Validate(g); err != nil {
		return nil, fmt.Errorf("engine: %s rewrite produced an invalid graph: %w", s, err)
	}
	p.Columns = g.Root.OutNames()
	p.Chosen = s
	p.NumParams = g.Params
	sp = e.Tracer.Begin("plan-cost", "prepare")
	p.EstimatedCost = exec.New(e.DB, exec.Options{MaterializeCSE: e.MaterializeCSE}).EstimateCost(g)
	sp.End()
	return p, nil
}

// cleanup runs the cleanup rule set under a named span; wall time records
// into the stage.rewrite histogram (all cleanup passes share it).
func (e *Engine) cleanup(g *qgm.Graph, stage string) error {
	sp := e.Tracer.Begin(stage, "rewrite")
	re := rewrite.NewCleanup()
	if e.CleanupFactory != nil {
		re = e.CleanupFactory()
	}
	start := time.Now()
	err := re.WithTracer(e.Tracer).Run(g)
	histRewrite.Observe(time.Since(start).Nanoseconds())
	sp.End()
	return err
}

// prepareAuto implements §7's plan choice: prepare the query as written
// (nested iteration) and magic decorrelated, estimate both, keep the
// cheaper plan. The query is parsed once and bound twice (the binder
// never mutates the AST).
func (e *Engine) prepareAuto(sql string, q ast.QueryExpr, traced bool) (*Prepared, error) {
	if q == nil {
		sp := e.Tracer.Begin("parse", "engine")
		var err error
		q, err = parseQuery(sql)
		sp.End()
		if err != nil {
			return nil, err
		}
	}
	ni, err := e.prepare("", q, NI, false)
	if err != nil {
		return nil, err
	}
	mag, err := e.prepare("", q, OptMagic, traced)
	if err != nil {
		// A non-converging rewrite rule set is an engine bug, not a query
		// the strategy merely cannot handle: surface it instead of
		// silently executing the NI plan.
		if errors.Is(err, rewrite.ErrNoFixpoint) {
			return nil, err
		}
		// Decorrelation failing is not fatal for Auto; fall back to NI.
		ni.Strategy = Auto
		autoBatchNI(ni)
		return ni, nil
	}
	best := ni
	if mag.EstimatedCost < ni.EstimatedCost {
		best = mag
	}
	best.Strategy = Auto
	if best == ni {
		autoBatchNI(best)
	}
	return best, nil
}

// autoBatchNI upgrades an Auto-selected NI plan to runtime batching when
// the graph still contains sibling-correlated subqueries — the mid-point
// between full nested iteration and full rewrite. The batched executor
// produces bit-identical rows and falls back to plain per-tuple NI for
// shapes it cannot serve, so the upgrade never changes results; it only
// collapses the per-outer-row fan-out the cost model picked NI despite.
func autoBatchNI(p *Prepared) {
	if hasBatchableCorrelation(p.Graph) {
		p.Chosen = NIBatch
	}
}

// hasBatchableCorrelation reports whether any scalar/existential/universal
// quantifier's input is correlated to sibling quantifiers of its own box —
// exactly the executor's nested-iteration fan-out condition (laterals
// excluded: their evaluation is order-sensitive and never batched).
func hasBatchableCorrelation(g *qgm.Graph) bool {
	for _, b := range qgm.Boxes(g.Root) {
		for _, q := range b.Quants {
			if q.Kind == qgm.QForEach {
				continue
			}
			for _, r := range qgm.FreeRefs(q.Input) {
				if r.Q.Owner == q.Owner && !r.Q.Kind.IsSubquery() {
					return true
				}
			}
		}
	}
	return false
}

// orderer exposes the executor's static nested-iteration join order to the
// rewrites (§7: the decorrelation uses the NI join order).
func (e *Engine) orderer() core.Orderer {
	ex := exec.New(e.DB, exec.Options{})
	return ex.JoinOrder
}

// Run executes the prepared query, returning rows and work counters. It
// is RunParams with no parameter values; a statement containing `?`
// placeholders must go through RunParams.
func (p *Prepared) Run() ([]storage.Row, *exec.Stats, error) {
	return p.RunParams(nil)
}

// RunParams executes the prepared query with params bound to the `?`
// placeholders in statement text order. A *Prepared is safe for
// concurrent RunParams calls: every call builds its own executor, the
// graph is read-only during execution, and parameter values live in the
// per-call executor — which is what lets the plan cache hand one plan to
// many clients.
func (p *Prepared) RunParams(params []sqltypes.Value) ([]storage.Row, *exec.Stats, error) {
	return p.RunParamsContext(context.Background(), params)
}

// RunParamsContext is RunParams under a cancellation context and the
// engine's Limits (read per call — a cached plan never captures either).
// It is also the engine's execution-side panic boundary: a panic on the
// caller's stack is recovered here, worker-goroutine panics arrive already
// converted by the scheduler, and both are counted and traced before the
// typed *exec.PanicError is returned — the engine stays usable.
func (p *Prepared) RunParamsContext(ctx context.Context, params []sqltypes.Value) (rows []storage.Row, stats *exec.Stats, err error) {
	if len(params) != p.NumParams {
		return nil, nil, fmt.Errorf("engine: statement has %d parameter(s), got %d value(s)",
			p.NumParams, len(params))
	}
	trace.Metrics.Counter("engine.executions").Inc()
	// Registry tracking: give the run its own cancel function (which is
	// what Kill invokes — the governor's ordinary cancellation path) and
	// log it on the way out. This defer is declared BEFORE the recover
	// defer below on purpose: defers run LIFO, so the recover has already
	// converted any panic into the named err by the time the run is logged.
	var aq *activeQuery
	if reg := p.engine.registry; reg != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		aq = reg.begin(p.Text, p.Chosen, cancel)
		defer func() {
			reg.finish(aq, len(rows), err)
			cancel()
		}()
	}
	execStart := time.Now()
	defer func() {
		d := time.Since(execStart).Nanoseconds()
		histExec.Observe(d)
		if h := strategyHists[p.Chosen]; h != nil {
			h.Observe(d)
		}
	}()
	sp := p.engine.Tracer.Begin("execute", "engine", trace.Str("strategy", p.Strategy.String()))
	defer func() {
		if r := recover(); r != nil {
			pe := &exec.PanicError{Val: r, Stack: debug.Stack()}
			p.engine.notePanic("execute", p.Text, pe)
			trace.Metrics.Counter("engine.execution_errors").Inc()
			sp.End(trace.Str("error", pe.Error()))
			rows, stats, err = nil, nil, pe
		}
	}()
	ex := exec.New(p.engine.DB, exec.Options{
		MaterializeCSE:    p.engine.MaterializeCSE,
		MemoizeCorrelated: p.Chosen == NIMemo,
		BatchCorrelated:   p.Chosen == NIBatch,
		Workers:           p.engine.Workers,
		Tracer:            p.engine.Tracer,
		Params:            params,
		Ctx:               ctx,
		Limits:            p.engine.Limits,
		DisableColumnar:   p.engine.RowMode,
	})
	if aq != nil {
		// Publish the live counters: workers bump them atomically, so
		// Active() can watch rows scanned/joined/grouped grow mid-run.
		aq.stats.Store(&ex.Stats)
	}
	rows, err = ex.Run(p.Graph)
	if err != nil {
		var pe *exec.PanicError
		if errors.As(err, &pe) {
			// A worker-goroutine panic the scheduler already converted:
			// count and trace it at the same boundary as caller-stack ones.
			p.engine.notePanic("execute", p.Text, pe)
		}
		trace.Metrics.Counter("engine.execution_errors").Inc()
		sp.End(trace.Str("error", err.Error()))
		return nil, nil, err
	}
	sp.End(trace.Int("rows", int64(len(rows))))
	return rows, &ex.Stats, nil
}

// Explain renders the rewritten plan.
func (p *Prepared) Explain() string { return qgm.Format(p.Graph) }

// ExplainAnalyze runs the query with per-box profiling and renders the
// plan annotated with actual evaluation counts and row counts. Correlated
// boxes show one evaluation per binding (nested iteration made visible);
// shared uncorrelated boxes show the §5.1 recomputation behavior.
func (p *Prepared) ExplainAnalyze() (string, error) {
	return p.ExplainAnalyzeContext(context.Background())
}

// ExplainAnalyzeContext is ExplainAnalyze under a cancellation context and
// the engine's Limits, with the same panic boundary as RunParamsContext.
func (p *Prepared) ExplainAnalyzeContext(ctx context.Context) (out string, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := &exec.PanicError{Val: r, Stack: debug.Stack()}
			p.engine.notePanic("explain-analyze", p.Text, pe)
			out, err = "", pe
		}
	}()
	ex := exec.New(p.engine.DB, exec.Options{
		MaterializeCSE:    p.engine.MaterializeCSE,
		MemoizeCorrelated: p.Chosen == NIMemo,
		BatchCorrelated:   p.Chosen == NIBatch,
		Workers:           p.engine.Workers,
		Tracer:            p.engine.Tracer,
		Ctx:               ctx,
		Limits:            p.engine.Limits,
	})
	ex.EnableProfiling()
	sp := p.engine.Tracer.Begin("explain-analyze", "engine", trace.Str("strategy", p.Strategy.String()))
	_, runErr := ex.Run(p.Graph)
	sp.End()
	if runErr != nil {
		var pe *exec.PanicError
		if errors.As(runErr, &pe) {
			p.engine.notePanic("explain-analyze", p.Text, pe)
		}
		return "", runErr
	}
	return ex.FormatProfile(p.Graph), nil
}

// Query is the one-shot convenience: prepare (through the plan cache when
// one is enabled) and run.
func (e *Engine) Query(sql string, s Strategy) ([]storage.Row, *exec.Stats, error) {
	return e.QueryParamsContext(context.Background(), sql, s, nil)
}

// QueryContext is Query under a cancellation context (see ExecContext).
func (e *Engine) QueryContext(ctx context.Context, sql string, s Strategy) ([]storage.Row, *exec.Stats, error) {
	return e.QueryParamsContext(ctx, sql, s, nil)
}

// QueryParams is Query with values for the statement's `?` placeholders.
func (e *Engine) QueryParams(sql string, s Strategy, params []sqltypes.Value) ([]storage.Row, *exec.Stats, error) {
	return e.QueryParamsContext(context.Background(), sql, s, params)
}

// QueryParamsContext is QueryParams under a cancellation context.
func (e *Engine) QueryParamsContext(ctx context.Context, sql string, s Strategy, params []sqltypes.Value) ([]storage.Row, *exec.Stats, error) {
	p, err := e.PrepareCached(sql, s)
	if err != nil {
		return nil, nil, err
	}
	return p.RunParamsContext(ctx, params)
}

// EnableRegistry attaches a query registry with a completed-query ring of
// about logCap entries (non-positive selects DefaultQueryLogCap). Call it
// before the engine is shared, like the other knob fields. Enabling the
// registry wraps every run in a cancelable context, so even runs whose
// caller passed context.Background() become killable (and governed by a
// governor checkpoint at every morsel claim and box evaluation).
func (e *Engine) EnableRegistry(logCap int) {
	e.registry = newRegistry(logCap)
}

// Registry exposes the attached query registry (nil when disabled).
func (e *Engine) Registry() *Registry { return e.registry }

// Kill cancels the identified running query (see Registry.Kill). Without
// an enabled registry it reports false.
func (e *Engine) Kill(id int64) bool {
	if e.registry == nil {
		return false
	}
	return e.registry.Kill(id)
}

// EnablePlanCache attaches a prepared-plan cache holding about capacity
// plans (non-positive selects the default). Call it before the engine is
// shared by concurrent clients, like the other knob fields.
func (e *Engine) EnablePlanCache(capacity int) {
	e.planCache = plancache.New(capacity)
}

// DisablePlanCache detaches the plan cache.
func (e *Engine) DisablePlanCache() { e.planCache = nil }

// PlanCache exposes the attached cache (nil when disabled) for stats and
// purging.
func (e *Engine) PlanCache() *plancache.Cache { return e.planCache }

// cacheable reports whether prepared plans may be served from the cache.
// A tracer opts out — the tracing contract is that every traced statement
// shows the whole pipeline, which a cache hit would elide — and so does a
// cleanup override, which changes what prepare would produce without
// being representable in the key.
func (e *Engine) cacheable() bool {
	return e.planCache != nil && e.Tracer == nil && e.CleanupFactory == nil
}

// trimStatement canonicalizes raw statement text for the fast-path cache
// key: surrounding whitespace and a trailing semicolon never change the
// parse, so "q", "q;" and "  q" share one plan without parsing.
func trimStatement(sql string) string {
	t := strings.TrimSpace(sql)
	t = strings.TrimSuffix(t, ";")
	return strings.TrimSpace(t)
}

// cacheKey folds every knob that changes the produced plan in ahead of
// the statement text. The func-valued options (CoreOpts.Order, Tracer,
// CleanupFactory) are deliberately absent: Order is always overridden by
// the engine, and the other two disable caching entirely (see cacheable).
func (e *Engine) cacheKey(text string, s Strategy) string {
	o := e.CoreOpts
	return fmt.Sprintf("s=%d de=%t oj=%t es=%t ms=%t cse=%t|%s",
		int(s), o.DecorrelateExistential, o.UseOuterJoin, o.EliminateSupplementary,
		e.MagicSets, e.MaterializeCSE, text)
}

// PrepareCached returns a plan for sql, serving it from the plan cache
// when possible and preparing (and caching) it otherwise. Plans are
// cached under two spellings: the trimmed raw text — so a repeated
// statement skips the parser — and the normalized text the parser's AST
// prints back to, so trivially reformatted statements share one plan.
// Without an enabled cache it falls back to a plain Prepare.
func (e *Engine) PrepareCached(sql string, s Strategy) (*Prepared, error) {
	if !e.cacheable() {
		return e.Prepare(sql, s)
	}
	// The epoch is loaded before parsing/binding: if DDL lands in between,
	// the plan is stored under the older epoch and discarded on its next
	// lookup — stale plans are never served, only over-invalidated.
	epoch := e.epoch.Load()
	rawKey := e.cacheKey(trimStatement(sql), s)
	if v, ok := e.planCache.Get(rawKey, epoch); ok {
		return v.(*Prepared), nil
	}
	q, err := parseQuery(sql)
	if err != nil {
		return nil, err
	}
	return e.prepareAndCache(rawKey, q, s, epoch)
}

// prepareAndCache finishes a cache miss: check the normalized-text key
// (another spelling of the same query may already be cached), prepare on
// a true miss, and store the plan under both keys.
func (e *Engine) prepareAndCache(rawKey string, q ast.QueryExpr, s Strategy, epoch uint64) (*Prepared, error) {
	normKey := e.cacheKey(ast.FormatQuery(q), s)
	if normKey != rawKey {
		if v, ok := e.planCache.Get(normKey, epoch); ok {
			p := v.(*Prepared)
			e.planCache.Put(rawKey, epoch, p)
			return p, nil
		}
	}
	p, err := e.prepareParsed(q, s, false)
	if err != nil {
		return nil, err
	}
	e.planCache.Put(normKey, epoch, p)
	if rawKey != normKey {
		e.planCache.Put(rawKey, epoch, p)
	}
	return p, nil
}
