// Package engine is the facade tying the stack together: SQL text is
// parsed, bound to a QGM, rewritten according to the chosen decorrelation
// strategy, cleaned up, and executed. The benchmark harness and the public
// API both sit on top of this package.
package engine

import (
	"errors"
	"fmt"
	"strings"

	"decorr/internal/ast"
	"decorr/internal/classic"
	"decorr/internal/core"
	"decorr/internal/exec"
	"decorr/internal/parser"
	"decorr/internal/qgm"
	"decorr/internal/rewrite"
	"decorr/internal/semant"
	"decorr/internal/storage"
	"decorr/internal/trace"
)

// Strategy selects how (whether) a correlated query is decorrelated before
// execution — the five algorithms of the paper's §5.1 plus the memoized
// nested-iteration baseline.
type Strategy int

const (
	// NI executes the query as written: correlated subqueries are invoked
	// per outer tuple (System R nested iteration).
	NI Strategy = iota
	// NIMemo is nested iteration with a per-binding result cache.
	NIMemo
	// Kim applies Kim's method [Kim82]. It faithfully reproduces the
	// historical COUNT bug.
	Kim
	// Dayal applies Dayal's method [Day87]: merge via left outer join,
	// group by a key of the outer relations.
	Dayal
	// GanskiWong applies the Ganski/Wong method [GW87], the single-table
	// special case of magic decorrelation.
	GanskiWong
	// Magic applies magic decorrelation (the paper's algorithm).
	Magic
	// OptMagic is magic decorrelation with the supplementary-table
	// common-subexpression elimination (OptMag in §5.1).
	OptMagic
	// Auto optimizes the query twice — once as written, once magic
	// decorrelated — estimates both plans, and keeps the cheaper (§7:
	// "The better of the two optimized plans is chosen").
	Auto
)

// String names the strategy as in the paper's figures.
func (s Strategy) String() string {
	switch s {
	case NI:
		return "NI"
	case NIMemo:
		return "NIMemo"
	case Kim:
		return "Kim"
	case Dayal:
		return "Dayal"
	case GanskiWong:
		return "GW"
	case Magic:
		return "Mag"
	case OptMagic:
		return "OptMag"
	case Auto:
		return "Auto"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// Strategies lists all strategies in presentation order.
var Strategies = []Strategy{NI, NIMemo, Kim, Dayal, GanskiWong, Magic, OptMagic, Auto}

// Engine prepares and runs queries against one database.
type Engine struct {
	DB *storage.DB
	// MaterializeCSE lets the executor cache shared uncorrelated boxes —
	// the optimizer improvement the paper wishes for in §5.3 (ablation
	// knob; Starburst recomputed).
	MaterializeCSE bool
	// CoreOpts tunes magic decorrelation (§4.4 knobs). The Order field is
	// always overridden with the executor's nested-iteration join order.
	CoreOpts core.Options
	// MagicSets additionally applies classical magic-sets rewriting
	// ([MFPR90], the paper's §7 sibling transformation): derived tables
	// equi-joined into a block are restricted to the distinct join
	// bindings before they aggregate.
	MagicSets bool
	// Workers bounds intra-query parallelism in the executor: 0 means
	// GOMAXPROCS, 1 forces single-threaded execution. Results are
	// bit-identical and identically ordered at every setting.
	Workers int
	// Tracer, when non-nil, threads span/event tracing through the whole
	// pipeline: parse, semant, every rewrite rule, decorrelation steps,
	// and per-box execution. Nil disables tracing at zero cost. Attaching
	// a tracer serializes execution (see exec.Options.Tracer).
	Tracer *trace.Tracer
	// CleanupFactory overrides the cleanup rewrite engine run before and
	// after the strategy rewrite; nil means rewrite.NewCleanup(). The
	// differential harness uses it to re-check strategies with individual
	// cleanup rules disabled.
	CleanupFactory func() *rewrite.Engine

	views semant.Views
}

// New creates an engine with the paper's default knobs.
func New(db *storage.DB) *Engine {
	return &Engine{DB: db, CoreOpts: core.DefaultOptions(), views: semant.Views{}}
}

// CreateView registers a named view from a "CREATE VIEW name [(cols)] AS
// query" statement. Views are expanded at bind time (the paper's §2.1
// presents the decorrelated plan as exactly such a view stack).
func (e *Engine) CreateView(sql string) error {
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		return err
	}
	cv, ok := stmt.(*ast.CreateView)
	if !ok {
		return fmt.Errorf("engine: not a CREATE VIEW statement")
	}
	name := strings.ToLower(cv.Name)
	if e.DB.Catalog.Lookup(name) != nil {
		return fmt.Errorf("engine: view %q collides with a base table", name)
	}
	if e.views == nil {
		e.views = semant.Views{}
	}
	e.views[name] = &semant.ViewDef{Cols: cv.Cols, Query: cv.Query}
	// Validate eagerly: the definition must bind (it may reference
	// earlier views but not itself).
	if _, err := semant.BindWithViews(cv.Query, e.DB.Catalog, e.views); err != nil {
		delete(e.views, name)
		return err
	}
	return nil
}

// DropView removes a view if present.
func (e *Engine) DropView(name string) {
	delete(e.views, strings.ToLower(name))
}

// Exec runs one statement: CREATE VIEW definitions return (nil, nil, nil);
// queries behave like Query.
func (e *Engine) Exec(sql string, s Strategy) ([]storage.Row, *exec.Stats, error) {
	stmt, err := parser.ParseStatement(sql)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := stmt.(*ast.CreateView); ok {
		return nil, nil, e.CreateView(sql)
	}
	return e.Query(sql, s)
}

// Prepared is a parsed, rewritten, validated query ready to run.
type Prepared struct {
	Graph    *qgm.Graph
	Strategy Strategy
	Trace    *core.Trace
	Columns  []string
	// Chosen reports which alternative the Auto strategy selected
	// (NI or OptMagic); it equals Strategy otherwise.
	Chosen Strategy
	// EstimatedCost is the optimizer's abstract cost of the chosen plan.
	EstimatedCost float64
	engine        *Engine
}

// Prepare parses sql and applies the strategy's rewrite.
func (e *Engine) Prepare(sql string, s Strategy) (*Prepared, error) {
	return e.prepare(sql, s, false)
}

// PrepareTraced is Prepare with rewrite tracing enabled (for Magic and
// OptMagic the trace holds the Figure 2–4 stage snapshots).
func (e *Engine) PrepareTraced(sql string, s Strategy) (*Prepared, error) {
	return e.prepare(sql, s, true)
}

func (e *Engine) prepare(sql string, s Strategy, traced bool) (*Prepared, error) {
	if s == Auto {
		return e.prepareAuto(sql, traced)
	}
	trace.Metrics.Counter("engine.prepares").Inc()
	prep := e.Tracer.Begin("prepare", "engine", trace.Str("strategy", s.String()))
	p, err := e.prepareStages(sql, s, traced)
	if err != nil {
		trace.Metrics.Counter("engine.prepare_errors").Inc()
		prep.End(trace.Str("error", err.Error()))
		return nil, err
	}
	prep.End()
	return p, nil
}

// prepareStages runs the pipeline stages under the prepare span.
func (e *Engine) prepareStages(sql string, s Strategy, traced bool) (*Prepared, error) {
	sp := e.Tracer.Begin("parse", "prepare")
	q, err := parser.Parse(sql)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = e.Tracer.Begin("semant", "prepare")
	g, err := semant.BindWithViews(q, e.DB.Catalog, e.views)
	sp.End()
	if err != nil {
		return nil, err
	}
	p := &Prepared{Graph: g, Strategy: s, engine: e}
	if traced {
		p.Trace = &core.Trace{}
	}
	// Normalize before the strategy rewrite: the paper applied "all
	// Starburst query transformations that were unrelated to
	// decorrelation ... to all queries" (§5.1). Merging trivial wrapper
	// boxes here also lets the FEED stage see aggregate subqueries
	// directly instead of through projection shells.
	if err := e.cleanup(g, "cleanup-pre"); err != nil {
		return nil, err
	}
	switch s {
	case NI, NIMemo:
		// Nested iteration runs the graph as bound.
	case Kim:
		if err := classic.ApplyKim(g); err != nil {
			return nil, err
		}
	case Dayal:
		if err := classic.ApplyDayal(g); err != nil {
			return nil, err
		}
	case GanskiWong:
		if err := classic.ApplyGanskiWong(g, e.orderer()); err != nil {
			return nil, err
		}
	case Magic, OptMagic:
		opts := e.CoreOpts
		opts.EliminateSupplementary = s == OptMagic
		opts.Order = e.orderer()
		opts.Tracer = e.Tracer
		sp = e.Tracer.Begin("decorrelate", "prepare", trace.Str("strategy", s.String()))
		err := core.Decorrelate(g, opts, p.Trace)
		sp.End()
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("engine: unknown strategy %v", s)
	}
	if err := e.cleanup(g, "cleanup-post"); err != nil {
		return nil, err
	}
	if e.MagicSets {
		if err := core.ApplyMagicSets(g, e.orderer()); err != nil {
			return nil, err
		}
		if err := e.cleanup(g, "cleanup-magicsets"); err != nil {
			return nil, err
		}
	}
	if err := qgm.Validate(g); err != nil {
		return nil, fmt.Errorf("engine: %s rewrite produced an invalid graph: %w", s, err)
	}
	p.Columns = g.Root.OutNames()
	p.Chosen = s
	sp = e.Tracer.Begin("plan-cost", "prepare")
	p.EstimatedCost = exec.New(e.DB, exec.Options{MaterializeCSE: e.MaterializeCSE}).EstimateCost(g)
	sp.End()
	return p, nil
}

// cleanup runs the cleanup rule set under a named span.
func (e *Engine) cleanup(g *qgm.Graph, stage string) error {
	sp := e.Tracer.Begin(stage, "rewrite")
	re := rewrite.NewCleanup()
	if e.CleanupFactory != nil {
		re = e.CleanupFactory()
	}
	err := re.WithTracer(e.Tracer).Run(g)
	sp.End()
	return err
}

// prepareAuto implements §7's plan choice: prepare the query as written
// (nested iteration) and magic decorrelated, estimate both, keep the
// cheaper plan.
func (e *Engine) prepareAuto(sql string, traced bool) (*Prepared, error) {
	ni, err := e.prepare(sql, NI, false)
	if err != nil {
		return nil, err
	}
	mag, err := e.prepare(sql, OptMagic, traced)
	if err != nil {
		// A non-converging rewrite rule set is an engine bug, not a query
		// the strategy merely cannot handle: surface it instead of
		// silently executing the NI plan.
		if errors.Is(err, rewrite.ErrNoFixpoint) {
			return nil, err
		}
		// Decorrelation failing is not fatal for Auto; fall back to NI.
		ni.Strategy = Auto
		return ni, nil
	}
	best := ni
	if mag.EstimatedCost < ni.EstimatedCost {
		best = mag
	}
	best.Strategy = Auto
	return best, nil
}

// orderer exposes the executor's static nested-iteration join order to the
// rewrites (§7: the decorrelation uses the NI join order).
func (e *Engine) orderer() core.Orderer {
	ex := exec.New(e.DB, exec.Options{})
	return ex.JoinOrder
}

// Run executes the prepared query, returning rows and work counters.
func (p *Prepared) Run() ([]storage.Row, *exec.Stats, error) {
	trace.Metrics.Counter("engine.executions").Inc()
	ex := exec.New(p.engine.DB, exec.Options{
		MaterializeCSE:    p.engine.MaterializeCSE,
		MemoizeCorrelated: p.Strategy == NIMemo,
		Workers:           p.engine.Workers,
		Tracer:            p.engine.Tracer,
	})
	sp := p.engine.Tracer.Begin("execute", "engine", trace.Str("strategy", p.Strategy.String()))
	rows, err := ex.Run(p.Graph)
	if err != nil {
		trace.Metrics.Counter("engine.execution_errors").Inc()
		sp.End(trace.Str("error", err.Error()))
		return nil, nil, err
	}
	sp.End(trace.Int("rows", int64(len(rows))))
	return rows, &ex.Stats, nil
}

// Explain renders the rewritten plan.
func (p *Prepared) Explain() string { return qgm.Format(p.Graph) }

// ExplainAnalyze runs the query with per-box profiling and renders the
// plan annotated with actual evaluation counts and row counts. Correlated
// boxes show one evaluation per binding (nested iteration made visible);
// shared uncorrelated boxes show the §5.1 recomputation behavior.
func (p *Prepared) ExplainAnalyze() (string, error) {
	ex := exec.New(p.engine.DB, exec.Options{
		MaterializeCSE:    p.engine.MaterializeCSE,
		MemoizeCorrelated: p.Strategy == NIMemo,
		Workers:           p.engine.Workers,
		Tracer:            p.engine.Tracer,
	})
	ex.EnableProfiling()
	sp := p.engine.Tracer.Begin("explain-analyze", "engine", trace.Str("strategy", p.Strategy.String()))
	_, err := ex.Run(p.Graph)
	sp.End()
	if err != nil {
		return "", err
	}
	return ex.FormatProfile(p.Graph), nil
}

// Query is the one-shot convenience: prepare and run.
func (e *Engine) Query(sql string, s Strategy) ([]storage.Row, *exec.Stats, error) {
	p, err := e.Prepare(sql, s)
	if err != nil {
		return nil, nil, err
	}
	return p.Run()
}
