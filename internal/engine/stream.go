package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"decorr/internal/exec"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/trace"
)

// StreamOpts are per-call overrides of the engine's execution knobs —
// the server applies a session's \workers and \limits here, so one shared
// Engine (one plan cache, one registry) serves sessions with different
// execution policies without mutating shared state.
type StreamOpts struct {
	// Workers, when non-zero, overrides Engine.Workers for this stream.
	Workers int
	// Limits, when non-nil, replaces Engine.Limits for this stream (a
	// pointer so "no limits" is expressible as a zero Limits value).
	Limits *exec.Limits
}

// Stream is one running query yielding its result batch-at-a-time. It
// carries the same lifecycle as Prepared.RunParamsContext — registry
// tracking (the query appears in sys.active_queries and is killable
// mid-stream), latency histograms, tracing spans, and the execution-side
// panic boundary — stretched over the iterator's lifetime. A Stream is not
// safe for concurrent use; Close it when done (idempotent, safe after
// exhaustion or error).
type Stream struct {
	p      *Prepared
	ex     *exec.Exec
	it     *exec.RowIterator
	aq     *activeQuery
	cancel context.CancelFunc
	sp     *trace.Span
	start  time.Time
	rows   int64
	done   bool
	err    error
}

// Stream begins a streaming execution with params bound to the `?`
// placeholders. It fails fast only on parameter arity; execution starts
// lazily, so every run-time failure (including a pre-canceled context)
// surfaces from Next. Like RunParams, concurrent Stream calls on one
// *Prepared are safe — each builds its own executor.
func (p *Prepared) Stream(ctx context.Context, params []sqltypes.Value) (*Stream, error) {
	return p.StreamWithOpts(ctx, params, StreamOpts{})
}

// StreamWithOpts is Stream with per-call execution overrides.
func (p *Prepared) StreamWithOpts(ctx context.Context, params []sqltypes.Value, opts StreamOpts) (*Stream, error) {
	if len(params) != p.NumParams {
		return nil, fmt.Errorf("engine: statement has %d parameter(s), got %d value(s)",
			p.NumParams, len(params))
	}
	trace.Metrics.Counter("engine.executions").Inc()
	s := &Stream{p: p, start: time.Now()}
	if reg := p.engine.registry; reg != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		s.cancel = cancel
		s.aq = reg.begin(p.Text, p.Chosen, cancel)
	}
	s.sp = p.engine.Tracer.Begin("execute", "engine", trace.Str("strategy", p.Strategy.String()))
	workers := p.engine.Workers
	if opts.Workers != 0 {
		workers = opts.Workers
	}
	limits := p.engine.Limits
	if opts.Limits != nil {
		limits = *opts.Limits
	}
	s.ex = exec.New(p.engine.DB, exec.Options{
		MaterializeCSE:    p.engine.MaterializeCSE,
		MemoizeCorrelated: p.Chosen == NIMemo,
		BatchCorrelated:   p.Chosen == NIBatch,
		Workers:           workers,
		Tracer:            p.engine.Tracer,
		Params:            params,
		Ctx:               ctx,
		Limits:            limits,
		DisableColumnar:   p.engine.RowMode,
	})
	if s.aq != nil {
		s.aq.stats.Store(&s.ex.Stats)
	}
	s.it = s.ex.RunStream(p.Graph)
	return s, nil
}

// QueryStream prepares sql (through the plan cache when enabled) and
// begins streaming its result. DDL statements are not queries and are
// rejected; route them through Exec/CreateView.
func (e *Engine) QueryStream(ctx context.Context, sql string, s Strategy, params []sqltypes.Value) (*Stream, error) {
	p, err := e.PrepareCached(sql, s)
	if err != nil {
		return nil, err
	}
	return p.Stream(ctx, params)
}

// Next returns the next non-empty batch of rows, (nil, nil) on exhaustion,
// or the stream's terminal error (repeated on every later call). Batches
// may alias stored rows; do not mutate them.
func (s *Stream) Next() (batch []storage.Row, err error) {
	if s.done {
		return nil, s.err
	}
	defer func() {
		// The engine's execution-side panic boundary, per batch: a panic on
		// this stack is converted, counted, and traced exactly as in
		// RunParamsContext, and the stream terminates with it.
		if r := recover(); r != nil {
			pe := &exec.PanicError{Val: r, Stack: debug.Stack()}
			s.p.engine.notePanic("execute", s.p.Text, pe)
			s.finish(pe)
			batch, err = nil, pe
		}
	}()
	batch, err = s.it.Next()
	if err != nil {
		var pe *exec.PanicError
		if errors.As(err, &pe) {
			// Worker-goroutine panics arrive already converted by the
			// scheduler; note them at the same boundary.
			s.p.engine.notePanic("execute", s.p.Text, pe)
		}
		s.finish(err)
		return nil, err
	}
	if batch == nil {
		s.finish(nil)
		return nil, nil
	}
	s.rows += int64(len(batch))
	return batch, nil
}

// finish latches the stream's terminal state once: histograms, span end,
// registry logging, context release.
func (s *Stream) finish(err error) {
	if s.done {
		return
	}
	s.done = true
	s.err = err
	s.it.Close()
	d := time.Since(s.start).Nanoseconds()
	histExec.Observe(d)
	if h := strategyHists[s.p.Chosen]; h != nil {
		h.Observe(d)
	}
	if err != nil {
		trace.Metrics.Counter("engine.execution_errors").Inc()
		s.sp.End(trace.Str("error", err.Error()))
	} else {
		s.sp.End(trace.Int("rows", s.rows))
	}
	if s.aq != nil {
		s.p.engine.registry.finish(s.aq, int(s.rows), err)
	}
	if s.cancel != nil {
		s.cancel()
	}
}

// Close ends the stream. Closing before exhaustion abandons it cleanly:
// the registry logs the rows streamed so far with no error. Close after
// exhaustion or error is a no-op.
func (s *Stream) Close() error {
	s.finish(s.err)
	return nil
}

// Columns returns the result column names.
func (s *Stream) Columns() []string { return s.p.Columns }

// ID returns the stream's registry query ID (killable via Engine.Kill),
// or zero when no registry is enabled.
func (s *Stream) ID() int64 {
	if s.aq == nil {
		return 0
	}
	return s.aq.id
}

// Err returns the terminal error, meaningful once Next returned (nil, nil)
// or an error, or after Close.
func (s *Stream) Err() error { return s.err }

// Stats snapshots the execution's work counters. Mid-stream it is a live
// (atomic) snapshot; after exhaustion it is the run's final counters.
func (s *Stream) Stats() exec.Stats { return s.ex.Stats.AtomicClone() }
