package engine_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// orderedRows renders rows in result order (multiset sorts; streaming must
// also preserve order).
func orderedRows(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

// drainStream collects a QueryStream into a slice, returning the stream's
// final stats alongside.
func drainStream(ctx context.Context, e *engine.Engine, sql string, s engine.Strategy) ([]storage.Row, exec.Stats, error) {
	st, err := e.QueryStream(ctx, sql, s, nil)
	if err != nil {
		return nil, exec.Stats{}, err
	}
	defer st.Close()
	var out []storage.Row
	for {
		batch, err := st.Next()
		if err != nil {
			return out, st.Stats(), err
		}
		if batch == nil {
			return out, st.Stats(), nil
		}
		out = append(out, batch...)
	}
}

// deterministicStats projects the counters that are identical at every
// worker count (CSERecomputes, MemoHits, and BoxEvals can legally move
// with scheduling under racing memo misses).
func deterministicStats(s exec.Stats) string {
	return fmt.Sprintf("scan=%d join=%d group=%d idx=%d hash=%d subq=%d distinct=%d",
		s.RowsScanned, s.RowsJoined, s.RowsGrouped, s.IndexLookups, s.HashBuilds,
		s.SubqueryInvocations, s.DistinctInvocations)
}

// Satellite (d): QueryStream and Query must produce identical ordered
// rows and deterministic stats across strategies × workers, over query
// shapes covering all three streaming modes (scan, tuple, materialized).
func TestStreamMatchesQueryDifferential(t *testing.T) {
	db := tpcd.EmpDeptSized(40, 400, 6, 11)
	cases := []struct {
		name, sql  string
		strategies []engine.Strategy
	}{
		{"scan-mode", "select name, building from emp where building <> 'B1'",
			[]engine.Strategy{engine.NI}},
		{"scan-mode-distinct", "select distinct building from emp",
			[]engine.Strategy{engine.NI}},
		{"tuple-mode-join", "select a.name, b.name from dept a, dept b where a.building = b.building",
			[]engine.Strategy{engine.NI}},
		{"tuple-mode-correlated", tpcd.ExampleQuery,
			[]engine.Strategy{engine.NI, engine.NIMemo, engine.Magic, engine.OptMagic, engine.Kim, engine.Dayal}},
		{"materialized-orderby", "select name from emp order by name desc",
			[]engine.Strategy{engine.NI}},
		{"materialized-group", "select building, count(*) from emp group by building",
			[]engine.Strategy{engine.NI, engine.Magic}},
	}
	for _, tc := range cases {
		for _, s := range tc.strategies {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/workers=%d", tc.name, s, workers)
				e := engine.New(db)
				e.Workers = workers
				rows, stats, err := e.Query(tc.sql, s)
				if err != nil {
					t.Fatalf("%s: Query: %v", name, err)
				}
				sRows, sStats, sErr := drainStream(context.Background(), e, tc.sql, s)
				if sErr != nil {
					t.Fatalf("%s: QueryStream: %v", name, sErr)
				}
				want, got := orderedRows(rows), orderedRows(sRows)
				if len(want) != len(got) {
					t.Fatalf("%s: stream yielded %d rows, Query %d", name, len(got), len(want))
				}
				for i := range want {
					if want[i] != got[i] {
						t.Fatalf("%s: row %d differs: stream %q, query %q", name, i, got[i], want[i])
					}
				}
				if d, q := deterministicStats(sStats), deterministicStats(*stats); d != q {
					t.Errorf("%s: stats diverge: stream %s, query %s", name, d, q)
				}
			}
		}
	}
}

// Errors must match between the two paths: same typed class, and for plain
// evaluation errors the same message.
func TestStreamMatchesQueryErrors(t *testing.T) {
	db := tpcd.EmpDept()
	cases := []struct {
		name, sql string
	}{
		{"scan-mode-projection-error", "select budget / (num_emps - num_emps) from dept"},
		{"tuple-mode-correlated-error", `
			select d.name from dept d
			where d.budget / (d.num_emps - d.num_emps) >
				(select count(*) from emp e where e.building = d.building)`},
	}
	for _, tc := range cases {
		for _, workers := range []int{1, 4} {
			name := fmt.Sprintf("%s/workers=%d", tc.name, workers)
			e := engine.New(db)
			e.Workers = workers
			_, _, qErr := e.Query(tc.sql, engine.NI)
			_, _, sErr := drainStream(context.Background(), e, tc.sql, engine.NI)
			if qErr == nil || sErr == nil {
				t.Fatalf("%s: expected both paths to fail: query=%v stream=%v", name, qErr, sErr)
			}
			if qErr.Error() != sErr.Error() {
				t.Errorf("%s: error text diverges: stream %q, query %q", name, sErr, qErr)
			}
		}
	}
}

// A MaxOutputRows trip surfaces from the stream as the same typed
// ErrRowBudget, and the rows streamed before the trip are a prefix of the
// unbudgeted result.
func TestStreamOutputBudgetTrip(t *testing.T) {
	db := tpcd.EmpDeptSized(40, 4000, 6, 11)
	const sql = "select name from emp"
	for _, workers := range []int{1, 4} {
		e := engine.New(db)
		e.Workers = workers
		full, _, err := e.Query(sql, engine.NI)
		if err != nil {
			t.Fatal(err)
		}
		e.Limits = exec.Limits{MaxOutputRows: 1500}
		if _, _, err := e.Query(sql, engine.NI); !errors.Is(err, exec.ErrRowBudget) {
			t.Fatalf("workers=%d: Query under budget: got %v, want ErrRowBudget", workers, err)
		}
		got, _, sErr := drainStream(context.Background(), e, sql, engine.NI)
		if !errors.Is(sErr, exec.ErrRowBudget) {
			t.Fatalf("workers=%d: stream under budget: got %v, want ErrRowBudget", workers, sErr)
		}
		if len(got) > 1500 {
			t.Fatalf("workers=%d: stream emitted %d rows past a 1500-row budget", workers, len(got))
		}
		wantPrefix := orderedRows(full[:len(got)])
		gotRows := orderedRows(got)
		for i := range gotRows {
			if gotRows[i] != wantPrefix[i] {
				t.Fatalf("workers=%d: streamed prefix diverges at row %d", workers, i)
			}
		}
		// The boundary itself is exact: a budget of the full result size
		// streams to completion.
		e.Limits = exec.Limits{MaxOutputRows: int64(len(full))}
		all, _, sErr := drainStream(context.Background(), e, sql, engine.NI)
		if sErr != nil || len(all) != len(full) {
			t.Fatalf("workers=%d: budget == result size: rows=%d err=%v", workers, len(all), sErr)
		}
	}
}

// Mid-stream cancellation: after the first batch, canceling the context
// terminates the stream with ErrCanceled within one morsel of work.
func TestStreamMidStreamCancel(t *testing.T) {
	db := tpcd.EmpDeptSized(40, 8000, 6, 11)
	for _, workers := range []int{1, 4} {
		e := engine.New(db)
		e.Workers = workers
		ctx, cancel := context.WithCancel(context.Background())
		st, err := e.QueryStream(ctx, "select name from emp", engine.NI, nil)
		if err != nil {
			t.Fatal(err)
		}
		first, err := st.Next()
		if err != nil || len(first) == 0 {
			t.Fatalf("workers=%d: first batch: rows=%d err=%v", workers, len(first), err)
		}
		cancel()
		var sErr error
		for {
			batch, err := st.Next()
			if err != nil {
				sErr = err
				break
			}
			if batch == nil {
				break
			}
		}
		if !errors.Is(sErr, exec.ErrCanceled) {
			t.Fatalf("workers=%d: got %v, want ErrCanceled after mid-stream cancel", workers, sErr)
		}
		// The terminal error latches.
		if _, err := st.Next(); !errors.Is(err, exec.ErrCanceled) {
			t.Fatalf("workers=%d: error did not latch: %v", workers, err)
		}
		st.Close()
	}
}

// Mid-stream Kill: a streaming query appears in the registry while open
// and dies with ErrCanceled when killed by ID; the log records the kill.
func TestStreamKillMidStream(t *testing.T) {
	db := tpcd.EmpDeptSized(40, 8000, 6, 11)
	e := engine.New(db)
	e.EnableRegistry(8)
	st, err := e.QueryStream(context.Background(), "select name from emp", engine.NI, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	id := st.ID()
	if id == 0 {
		t.Fatal("stream has no registry ID with registry enabled")
	}
	found := false
	for _, aq := range e.Registry().Active() {
		if aq.ID == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("open stream %d not listed in Registry.Active", id)
	}
	if !e.Kill(id) {
		t.Fatalf("Kill(%d) reported not found for a live stream", id)
	}
	var sErr error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		batch, err := st.Next()
		if err != nil {
			sErr = err
			break
		}
		if batch == nil {
			break
		}
	}
	if !errors.Is(sErr, exec.ErrCanceled) {
		t.Fatalf("killed stream: got %v, want ErrCanceled", sErr)
	}
	var logged *engine.QueryLogEntry
	for _, le := range e.Registry().Log() {
		if le.ID == id {
			le := le
			logged = &le
		}
	}
	if logged == nil {
		t.Fatalf("killed stream %d missing from the query log", id)
	}
	if logged.Trip != "canceled" {
		t.Errorf("killed stream logged trip %q, want %q", logged.Trip, "canceled")
	}
}

// Regression: results served from an already-materialized slice claim no
// morsels, so the batch boundary itself must poll the governor. Two such
// shapes: an identity projection over a base table (the planner collapses
// it to a bare table box, which fails the streaming gate) and an ORDER BY
// root. Before the fix, Kill against either was latched but never
// observed — the stream drained every remaining batch and finished clean,
// with no error and no "canceled" trip in the log.
func TestStreamKillWhileServingMaterialized(t *testing.T) {
	db := tpcd.EmpDeptSized(40, 8000, 6, 11)
	for _, sql := range []string{
		"select name, building from emp",     // identity projection: base-table root
		"select name from emp order by name", // global pass: materialized mode
	} {
		e := engine.New(db)
		e.EnableRegistry(8)
		st, err := e.QueryStream(context.Background(), sql, engine.NI, nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		first, err := st.Next()
		if err != nil || len(first) == 0 {
			t.Fatalf("%s: first batch: rows=%d err=%v", sql, len(first), err)
		}
		if !e.Kill(st.ID()) {
			t.Fatalf("%s: Kill(%d) reported not found", sql, st.ID())
		}
		// The very next batch boundary must observe the kill: nothing
		// between here and there claims a morsel.
		batch, err := st.Next()
		if !errors.Is(err, exec.ErrCanceled) {
			t.Fatalf("%s: Next after kill: rows=%d err=%v, want ErrCanceled", sql, len(batch), err)
		}
		var logged *engine.QueryLogEntry
		for _, le := range e.Registry().Log() {
			if le.ID == st.ID() {
				le := le
				logged = &le
			}
		}
		if logged == nil || logged.Trip != "canceled" {
			t.Errorf("%s: kill not logged as a canceled trip: %+v", sql, logged)
		}
		st.Close()
	}
}

// Abandoning a stream (Close before exhaustion) logs the partial row count
// with no error and leaves the engine fully usable.
func TestStreamCloseEarly(t *testing.T) {
	db := tpcd.EmpDeptSized(40, 8000, 6, 11)
	e := engine.New(db)
	e.EnableRegistry(8)
	st, err := e.QueryStream(context.Background(), "select name from emp", engine.NI, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := st.Next()
	if err != nil {
		t.Fatal(err)
	}
	id := st.ID()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if len(e.Registry().Active()) != 0 {
		t.Fatal("closed stream still listed as active")
	}
	var logged *engine.QueryLogEntry
	for _, le := range e.Registry().Log() {
		if le.ID == id {
			le := le
			logged = &le
		}
	}
	if logged == nil {
		t.Fatal("abandoned stream missing from the query log")
	}
	if logged.Err != "" || logged.RowsOut != len(batch) {
		t.Errorf("abandoned stream logged err=%q rows=%d, want clean with %d rows",
			logged.Err, logged.RowsOut, len(batch))
	}
	rows, _, err := e.Query("select name from emp where building = 'B1'", engine.NI)
	if err != nil {
		t.Fatalf("engine unusable after abandoned stream: %v", err)
	}
	_ = rows
}

// Per-stream overrides: a session limit (StreamWithOpts) governs one
// stream without touching the engine's shared limits.
func TestStreamWithOptsOverridesLimits(t *testing.T) {
	db := tpcd.EmpDeptSized(40, 4000, 6, 11)
	e := engine.New(db)
	p, err := e.Prepare("select name from emp", engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.StreamWithOpts(context.Background(), nil,
		engine.StreamOpts{Workers: 1, Limits: &exec.Limits{MaxOutputRows: 100}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var sErr error
	for {
		batch, err := st.Next()
		if err != nil {
			sErr = err
			break
		}
		if batch == nil {
			break
		}
	}
	if !errors.Is(sErr, exec.ErrRowBudget) {
		t.Fatalf("per-stream budget: got %v, want ErrRowBudget", sErr)
	}
	if e.Limits.Enabled() {
		t.Fatal("per-stream limits leaked into the engine")
	}
	rows, _, err := e.Query("select name from emp", engine.NI)
	if err != nil || len(rows) != 4000 {
		t.Fatalf("engine limits disturbed: rows=%d err=%v", len(rows), err)
	}
}

// Parameterized streams bind `?` placeholders like RunParams (arity
// checked up front) and flow through the plan cache.
func TestStreamParamsThroughPlanCache(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.EnablePlanCache(16)
	const sql = "select name from emp where building = ?"
	p, err := e.PrepareCached(sql, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := p.Stream(context.Background(), nil); err == nil {
		st.Close()
		t.Fatal("stream accepted missing parameter")
	}
	want, _, err := p.RunParams([]sqltypes.Value{sqltypes.NewString("B1")})
	if err != nil {
		t.Fatal(err)
	}
	st, err := p.Stream(context.Background(), []sqltypes.Value{sqltypes.NewString("B1")})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var got []storage.Row
	for {
		batch, err := st.Next()
		if err != nil {
			t.Fatal(err)
		}
		if batch == nil {
			break
		}
		got = append(got, batch...)
	}
	w, g := orderedRows(want), orderedRows(got)
	if fmt.Sprint(w) != fmt.Sprint(g) {
		t.Fatalf("parameterized stream diverges:\n got %v\nwant %v", g, w)
	}
	// Warm path: the next stream of the same text is a cache hit.
	hits := counterDelta("plancache.hits", func() {
		st, err := e.QueryStream(context.Background(), sql, engine.NI,
			[]sqltypes.Value{sqltypes.NewString("B1")})
		if err != nil {
			t.Fatal(err)
		}
		st.Close()
	})
	if hits != 1 {
		t.Fatalf("warm QueryStream moved plancache.hits by %d, want 1", hits)
	}
}
