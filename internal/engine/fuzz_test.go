package engine_test

import (
	"testing"

	"decorr/internal/engine"
	"decorr/internal/tpcd"
)

// FuzzEndToEnd pushes arbitrary SQL through the full pipeline — parse,
// bind, decorrelate, clean up, execute — under every strategy. Errors are
// fine; panics and NI/Magic result divergence are not.
func FuzzEndToEnd(f *testing.F) {
	for _, seed := range []string{
		tpcd.ExampleQuery,
		"select name from dept where budget < 10000",
		"select d.name from dept d where exists (select * from emp e where e.building = d.building)",
		"select building, count(*) from emp group by building having count(*) > 1",
		"select name from emp union select name from dept",
		"select d.name, (select count(*) from emp e where e.building = d.building) from dept d",
		"select case when budget < 1000 then 'x' end from dept",
		"select d.name from dept d left outer join emp e on d.building = e.building",
	} {
		f.Add(seed)
	}
	db := tpcd.EmpDept()
	f.Fuzz(func(t *testing.T, sql string) {
		e := engine.New(db)
		niRows, _, err := e.Query(sql, engine.NI)
		if err != nil {
			return
		}
		magRows, _, err := e.Query(sql, engine.Magic)
		if err != nil {
			t.Fatalf("NI accepted but Magic failed on %q: %v", sql, err)
		}
		if len(niRows) != len(magRows) {
			t.Fatalf("row-count divergence on %q: NI=%d Magic=%d", sql, len(niRows), len(magRows))
		}
	})
}
