package engine_test

import (
	"strings"
	"sync"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/sqltypes"
	"decorr/internal/tpcd"
)

func str(s string) sqltypes.Value { return sqltypes.NewString(s) }
func intv(i int64) sqltypes.Value { return sqltypes.NewInt(i) }

func TestParamsBasic(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.Prepare("select name from emp where building = ? order by name", engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParams != 1 {
		t.Fatalf("NumParams = %d, want 1", p.NumParams)
	}
	for building, want := range map[string][]string{
		"B1": {"anne", "bob"},
		"B2": {"carl", "dina", "ed"},
		"B9": nil,
	} {
		rows, _, err := p.RunParams([]sqltypes.Value{str(building)})
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, building, multiset(rows), want)
	}
}

func TestParamsMultiple(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	rows, _, err := e.ExecParams(
		"select name from dept where budget > ? and building = ?",
		engine.NI, []sqltypes.Value{intv(1000), str("B1")})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "two params", multiset(rows), []string{"tools", "toys"})
}

// The §2 example with the budget threshold parameterized must give the
// same answer under nested iteration and magic decorrelation: parameters
// survive the full rewrite pipeline.
func TestParamsSurviveDecorrelation(t *testing.T) {
	const q = `select d.name from dept d
		where d.budget < ? and d.num_emps >
		  (select count(*) from emp e where e.building = d.building)`
	for _, s := range []engine.Strategy{engine.NI, engine.Dayal, engine.GanskiWong, engine.Magic, engine.OptMagic, engine.Auto} {
		e := engine.New(tpcd.EmpDept())
		rows, _, err := e.ExecParams(q, s, []sqltypes.Value{intv(10000)})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		sameRows(t, s.String(), multiset(rows), []string{"archives", "toys"})
		// A different binding of the same plan shape.
		rows, _, err = e.ExecParams(q, s, []sqltypes.Value{intv(100)})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		sameRows(t, s.String()+"-low", multiset(rows), nil)
	}
}

func TestParamsArityChecked(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.Prepare("select name from emp where building = ?", engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Run(); err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Fatalf("Run with missing params: err = %v", err)
	}
	if _, _, err := p.RunParams([]sqltypes.Value{str("B1"), str("B2")}); err == nil {
		t.Fatal("RunParams with excess values succeeded")
	}
	// Unparameterized statements reject stray values too.
	p2, err := e.Prepare("select name from emp", engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p2.RunParams([]sqltypes.Value{str("x")}); err == nil {
		t.Fatal("RunParams on 0-param statement accepted a value")
	}
}

func TestCreateViewRejectsParams(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	err := e.CreateView("create view v as select name from emp where building = ?")
	if err == nil || !strings.Contains(err.Error(), "parameter") {
		t.Fatalf("err = %v, want parameter rejection", err)
	}
	// The failed definition must not have been installed.
	if _, _, qerr := e.Query("select * from v", engine.NI); qerr == nil {
		t.Fatal("rejected view is queryable")
	}
}

// One shared Prepared, many concurrent RunParams with distinct bindings:
// the plan must be re-entrant (run with -race).
func TestPreparedRunParamsConcurrent(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.Prepare("select name from emp where building = ? order by name", engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"B1": {"anne", "bob"},
		"B2": {"carl", "dina", "ed"},
		"B3": {"fay"},
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		for building := range want {
			wg.Add(1)
			go func(building string) {
				defer wg.Done()
				for i := 0; i < 25; i++ {
					rows, _, err := p.RunParams([]sqltypes.Value{str(building)})
					if err != nil {
						t.Error(err)
						return
					}
					got := multiset(rows)
					if len(got) != len(want[building]) {
						t.Errorf("%s: got %v want %v", building, got, want[building])
						return
					}
				}
			}(building)
		}
	}
	wg.Wait()
}
