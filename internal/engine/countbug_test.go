package engine_test

import (
	"testing"

	"decorr/internal/engine"
	"decorr/internal/tpcd"
)

// countBugQueries are COUNT(*) correlated scalar subqueries over data with
// empty correlation groups — the exact shape of the paper's §2 COUNT bug.
// Three variations: the comparison below the count, the count in the select
// list, and a NULL-bearing random instance where some outer rows have a
// NULL correlation column (an empty group of its own kind).
var countBugQueries = []string{
	tpcd.ExampleQuery,
	`select d.name, (select count(*) from emp e where e.building = d.building) from dept d`,
	`select d.name from dept d where 0 = (select count(*) from emp e where e.building = d.building)`,
}

// TestCountBugOnlyKim asserts the division of the world the harness
// allowlist encodes: every modern strategy agrees with nested iteration on
// COUNT over empty groups, while classic Kim keeps its documented row loss
// (a strict subset of the oracle's answer) as faithful historical
// behaviour. If Kim ever returns the full answer these expectations go
// stale — that would mean the reproduction stopped reproducing the bug.
func TestCountBugOnlyKim(t *testing.T) {
	dbs := []struct {
		name string
		eng  *engine.Engine
	}{
		{"empdept", engine.New(tpcd.EmpDept())},
		{"empdept-random", engine.New(tpcd.EmpDeptRandom(3, 8, 16, 4))},
	}
	for _, d := range dbs {
		for _, sql := range countBugQueries {
			e := d.eng
			want, _ := query(t, e, sql, engine.NI)
			for _, s := range []engine.Strategy{
				engine.NIMemo, engine.Dayal, engine.GanskiWong,
				engine.Magic, engine.OptMagic, engine.Auto,
			} {
				if s == engine.Dayal || s == engine.GanskiWong {
					// The classic methods refuse shapes outside their
					// applicability limits; skip those, fail on anything else.
					rows, _, err := e.Query(sql, s)
					if err != nil {
						continue
					}
					sameRows(t, d.name+"/"+s.String(), multiset(rows), want)
					continue
				}
				got, _ := query(t, e, sql, s)
				sameRows(t, d.name+"/"+s.String(), got, want)
			}

			// Kim: refusal is fine; an answer must be a strict-subset row
			// loss, never spurious rows.
			rows, _, err := e.Query(sql, engine.Kim)
			if err != nil {
				continue
			}
			got := multiset(rows)
			if !isSubsetMultiset(got, want) {
				t.Errorf("%s/Kim on %q: produced rows outside the oracle answer\n got: %v\nwant: %v",
					d.name, sql, got, want)
			}
		}
	}

	// And the canonical witness stays lost: Kim on the §2 example query
	// drops archives (asserted exactly in TestKimCountBugReproduced).
	e := engine.New(tpcd.EmpDept())
	got, _ := query(t, e, tpcd.ExampleQuery, engine.Kim)
	if len(got) >= 2 {
		t.Error("Kim no longer loses the empty-group department; the historical COUNT bug is not reproduced")
	}
}

// isSubsetMultiset reports got ⊆ want as sorted multisets.
func isSubsetMultiset(got, want []string) bool {
	i := 0
	for _, g := range got {
		for i < len(want) && want[i] < g {
			i++
		}
		if i >= len(want) || want[i] != g {
			return false
		}
		i++
	}
	return true
}
