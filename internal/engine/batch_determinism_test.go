package engine_test

import (
	"errors"
	"testing"

	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// TestBatchedDeterminismMatrix is the columnar-parity matrix extended to
// the runtime-batched strategy: every correlated shape runs under NIBatch
// at workers 1, 2, and 8 with the vectorized engine on and off. Rows
// (including order) and execution counters must be identical across every
// cell, rows must be bit-identical to the per-row NI baseline, and the
// batched path must actually have engaged (BatchedSubqueries > 0) — a
// silently-declined batch would make this test vacuous.
func TestBatchedDeterminismMatrix(t *testing.T) {
	tpcdDB := tpcd.Generate(tpcd.Config{SF: 0.01, Seed: 7})
	empDB := tpcd.EmpDept()
	cases := []struct {
		name, sql string
		db        *storage.DB
	}{
		// Correlated scalar COUNT over a group box: signature extraction
		// declines at the group root, exercising the per-distinct-binding
		// fallback with duplicate correlation values (two B1 departments).
		{"ScalarAgg", tpcd.ExampleQuery, empDB},
		// Root-level equality correlation: the single-execution path.
		{"Exists",
			`Select D.name From Dept D
			 Where Exists (Select * From Emp E Where E.building = D.building)
			 Order By D.name`, empDB},
		{"NotExists",
			`Select D.name From Dept D
			 Where Not Exists (Select * From Emp E Where E.building = D.building)
			 Order By D.name`, empDB},
		// Quantifier ties outside the subtree plus correlation inside it.
		{"In",
			`Select D.name From Dept D
			 Where D.name In (Select E.name From Emp E Where E.building = D.building)
			 Order By D.name`, empDB},
		{"Query1", tpcd.Query1, tpcdDB},
		{"Query2", tpcd.Query2, tpcdDB},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			base := engine.New(c.db)
			base.Workers = 1
			niRows, _, err := base.Query(c.sql, engine.NI)
			if err != nil {
				t.Fatalf("NI baseline: %v", err)
			}
			want := ordered(niRows)

			type run struct {
				rows  []string
				stats [7]int64
				batch [2]int64
			}
			var first *run
			for _, w := range []int{1, 2, 8} {
				for _, rowMode := range []bool{false, true} {
					e := engine.New(c.db)
					e.Workers = w
					e.RowMode = rowMode
					rows, stats, err := e.Query(c.sql, engine.NIBatch)
					if err != nil {
						t.Fatalf("workers=%d rowmode=%v: %v", w, rowMode, err)
					}
					got := run{
						rows:  ordered(rows),
						stats: execCounters(stats),
						batch: [2]int64{stats.BatchedSubqueries, stats.BatchExecutions},
					}
					if got.batch[0] == 0 {
						t.Fatalf("workers=%d rowmode=%v: batched path never engaged", w, rowMode)
					}
					if len(got.rows) != len(want) {
						t.Fatalf("workers=%d rowmode=%v: %d rows, NI baseline has %d",
							w, rowMode, len(got.rows), len(want))
					}
					for i := range got.rows {
						if got.rows[i] != want[i] {
							t.Fatalf("workers=%d rowmode=%v row %d: got %q, NI baseline %q",
								w, rowMode, i, got.rows[i], want[i])
						}
					}
					if first == nil {
						first = &got
						continue
					}
					if got.stats != first.stats {
						t.Fatalf("workers=%d rowmode=%v: counters %v, want %v",
							w, rowMode, got.stats, first.stats)
					}
					if got.batch != first.batch {
						t.Fatalf("workers=%d rowmode=%v: batch counters %v, want %v",
							w, rowMode, got.batch, first.batch)
					}
				}
			}
		})
	}
}

// batchBoundaryDB: outer t1(k) with duplicate correlation values and inner
// t2(k, v), no indexes — the exists-probe below takes the single-execution
// batch path, whose tracked bytes are exactly the distinct binding keys
// plus the partitioned build side.
func batchBoundaryDB() *storage.DB {
	db := storage.NewDB()
	t1 := db.Create(schema.NewTable("t1", schema.Column{Name: "k", Type: schema.TInt}))
	for _, k := range []int64{1, 1, 2, 2, 3} {
		if err := t1.Insert(storage.Row{sqltypes.NewInt(k)}); err != nil {
			panic(err)
		}
	}
	t2 := db.Create(schema.NewTable("t2",
		schema.Column{Name: "k", Type: schema.TInt},
		schema.Column{Name: "v", Type: schema.TInt}))
	for _, kv := range [][2]int64{{1, 10}, {2, 20}, {2, 21}} {
		if err := t2.Insert(storage.Row{sqltypes.NewInt(kv[0]), sqltypes.NewInt(kv[1])}); err != nil {
			panic(err)
		}
	}
	return db
}

// TestBatchedGovernorExactBoundary pins the batched path's MaxTrackedBytes
// accounting to the byte: the bindings relation is charged at its encoded
// key lengths and the single-execution build side at the same rowsBytes
// model as a hash-join build (24 bytes per value). A budget of exactly that
// sum passes; one byte less trips ErrMemBudget — at any worker count.
func TestBatchedGovernorExactBoundary(t *testing.T) {
	const sql = `Select T.k From t1 T
		Where Exists (Select I.v From t2 I Where I.k = T.k)
		Order By T.k`
	db := batchBoundaryDB()

	// Distinct bindings of T.k are {1, 2, 3}; the build side is the three
	// projected width-1 int rows of t2.
	keyLen := func(v sqltypes.Value) int64 {
		return int64(len(sqltypes.Key([]sqltypes.Value{v})))
	}
	budget := keyLen(sqltypes.NewInt(1)) + keyLen(sqltypes.NewInt(2)) +
		keyLen(sqltypes.NewInt(3)) + 3*24

	for _, w := range []int{1, 4} {
		e := engine.New(db)
		e.Workers = w
		e.Limits = exec.Limits{MaxTrackedBytes: budget}
		rows, stats, err := e.Query(sql, engine.NIBatch)
		if err != nil {
			t.Fatalf("workers=%d: exact budget %d tripped: %v", w, budget, err)
		}
		sameRows(t, "exact-budget rows", multiset(rows), []string{"1", "1", "2", "2"})
		// Pin the path the formula describes: one batched call covering all
		// five outer tuples, collapsed into one single-execution run.
		if stats.BatchedSubqueries != 5 || stats.BatchExecutions != 1 {
			t.Fatalf("workers=%d: batched=%d batch-execs=%d, want 5 and 1",
				w, stats.BatchedSubqueries, stats.BatchExecutions)
		}

		e.Limits = exec.Limits{MaxTrackedBytes: budget - 1}
		if _, _, err := e.Query(sql, engine.NIBatch); !errors.Is(err, exec.ErrMemBudget) {
			t.Fatalf("workers=%d: budget %d: got %v, want ErrMemBudget", w, budget-1, err)
		}
	}
}

// TestBatchedSysCatalogFallback: correlated subqueries over sys.* synthetic
// tables must not be batched (their row sources read live engine state), but
// NIBatch must still answer them — by falling back to per-tuple nested
// iteration — with rows identical to NI.
func TestBatchedSysCatalogFallback(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.MountSystemCatalog()
	// Populate the query log with completed queries of two strategies.
	for _, s := range []engine.Strategy{engine.NI, engine.Magic} {
		if _, _, err := e.Query(tpcd.ExampleQuery, s); err != nil {
			t.Fatal(err)
		}
	}

	// DISTINCT keeps the expected rows stable while the log keeps growing:
	// every comparison run below appends its own completed query to it.
	const sql = `select distinct q.strategy from sys.query_log q
		where exists (select * from sys.query_log q2 where q2.strategy = q.strategy)
		order by q.strategy`
	want, _ := query(t, e, sql, engine.NI)
	if len(want) == 0 {
		t.Fatal("query log is empty; the regression needs completed queries")
	}
	got, stats := query(t, e, sql, engine.NIBatch)
	sameRows(t, "NIBatch over sys.query_log", got, want)
	if stats.BatchedSubqueries != 0 {
		t.Errorf("batched a volatile sys.* subtree: batched=%d", stats.BatchedSubqueries)
	}
	if stats.SubqueryInvocations == 0 {
		t.Error("fallback never invoked the correlated subquery")
	}
}
