package engine_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/schema"
	"decorr/internal/sqltypes"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// gateDB builds a database with a regular outer table t(a) of n rows and a
// synthetic table gate(b) whose every scan blocks until release is closed.
// A correlated NI query over the pair scans t, then parks on the first
// subquery invocation — rows-scanned progress is visible while the query
// is provably still running, and the test controls exactly when it may
// proceed.
func gateDB(n int, release <-chan struct{}) *storage.DB {
	db := storage.NewDB()
	t := db.Create(schema.NewTable("t", schema.Column{Name: "a", Type: schema.TInt}))
	for i := 0; i < n; i++ {
		if err := t.Insert(storage.Row{sqltypes.NewInt(int64(i))}); err != nil {
			panic(err)
		}
	}
	db.CreateSynthetic(schema.NewTable("gate", schema.Column{Name: "b", Type: schema.TInt}),
		func() []storage.Row {
			<-release
			return []storage.Row{{sqltypes.NewInt(1)}}
		})
	return db
}

// findRow returns the first row whose column col equals id, or nil.
func findRow(rows []storage.Row, col int, id int64) storage.Row {
	for _, r := range rows {
		if r[col].K == sqltypes.KindInt && r[col].I == id {
			return r
		}
	}
	return nil
}

// Tentpole acceptance: a SELECT over sys.active_queries issued while
// another query runs shows that query with live row progress; Kill ends it
// with exec.ErrCanceled; and the victim lands in sys.query_log with its
// error, budget trip, and partial progress counters.
func TestActiveQueriesLiveProgressAndKill(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	open := func() { releaseOnce.Do(func() { close(release) }) }
	defer open()

	e := engine.New(gateDB(100, release))
	e.MountSystemCatalog()

	const victim = `select a from t where a > (select count(*) from gate g where g.b = t.a)`
	errCh := make(chan error, 1)
	rowsCh := make(chan int, 1)
	go func() {
		rows, _, err := e.Query(victim, engine.NI)
		rowsCh <- len(rows)
		errCh <- err
	}()

	// Wait for the victim to appear with nonzero scan progress: the outer
	// table is regular, so its rows are counted while the first correlated
	// invocation is parked on the gate.
	var victimID int64
	deadline := time.Now().Add(10 * time.Second)
	for victimID == 0 {
		if time.Now().After(deadline) {
			t.Fatal("victim query never showed scan progress in the registry")
		}
		for _, q := range e.Registry().Active() {
			if q.Text == victim && q.Progress.RowsScanned > 0 {
				victimID = q.ID
			}
		}
		time.Sleep(time.Millisecond)
	}

	// Observe it through SQL, as a second client would.
	rows, _, err := e.Query("select id, rows_scanned, elapsed_ns, strategy from sys.active_queries", engine.NI)
	if err != nil {
		t.Fatalf("sys.active_queries: %v", err)
	}
	r := findRow(rows, 0, victimID)
	if r == nil {
		t.Fatalf("victim id %d not in sys.active_queries rows %v", victimID, rows)
	}
	if r[1].I <= 0 {
		t.Errorf("sys.active_queries rows_scanned = %d, want > 0 mid-query", r[1].I)
	}
	if r[2].I <= 0 {
		t.Errorf("sys.active_queries elapsed_ns = %d, want > 0", r[2].I)
	}
	if r[3].S != "NI" {
		t.Errorf("sys.active_queries strategy = %q, want NI", r[3].S)
	}
	// The observing query itself is active while it scans the table, so
	// the table can never be empty when read through the engine.
	if len(rows) < 2 {
		t.Errorf("sys.active_queries has %d rows, want at least victim + observer", len(rows))
	}

	// Kill it, then open the gate so the parked scan returns into the
	// governor checkpoint that delivers the cancellation.
	if !e.Kill(victimID) {
		t.Fatalf("Kill(%d) = false for a running query", victimID)
	}
	open()
	select {
	case n := <-rowsCh:
		if err := <-errCh; !errors.Is(err, exec.ErrCanceled) {
			t.Fatalf("killed query returned %v, want exec.ErrCanceled", err)
		}
		if n != 0 {
			t.Fatalf("killed query returned %d rows", n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("killed query did not terminate")
	}
	if e.Kill(victimID) {
		t.Error("Kill succeeded twice for the same id")
	}

	// The victim's post-mortem row: error text, trip classification, and
	// the partial progress it had made.
	rows, _, err = e.Query("select id, error, budget_trip, rows_scanned from sys.query_log", engine.NI)
	if err != nil {
		t.Fatalf("sys.query_log: %v", err)
	}
	r = findRow(rows, 0, victimID)
	if r == nil {
		t.Fatalf("victim id %d not in sys.query_log", victimID)
	}
	if r[1].S == "" {
		t.Error("killed query logged with empty error")
	}
	if r[2].S != "canceled" {
		t.Errorf("budget_trip = %q, want canceled", r[2].S)
	}
	if r[3].I <= 0 {
		t.Errorf("query_log rows_scanned = %d, want partial progress > 0", r[3].I)
	}
}

func TestSystemCatalogTables(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.EnablePlanCache(64)
	e.MountSystemCatalog()
	for _, s := range []engine.Strategy{engine.NI, engine.Magic} {
		if _, _, err := e.Query(tpcd.ExampleQuery, s); err != nil {
			t.Fatal(err)
		}
	}

	rows, _, err := e.Query("select name, kind, value from sys.metrics", engine.NI)
	if err != nil {
		t.Fatalf("sys.metrics: %v", err)
	}
	found := false
	for _, r := range rows {
		if r[0].S == "engine.executions" && r[1].S == "counter" && r[2].I > 0 {
			found = true
		}
	}
	if !found {
		t.Error("sys.metrics lacks a positive engine.executions counter row")
	}

	rows, _, err = e.Query("select name, observations, p50_ns from sys.histograms where observations > 0", engine.NI)
	if err != nil {
		t.Fatalf("sys.histograms: %v", err)
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r[0].S] = true
	}
	for _, want := range []string{"stage.parse", "stage.exec", "exec.strategy.NI", "exec.strategy.Mag"} {
		if !names[want] {
			t.Errorf("sys.histograms lacks populated %q (have %v)", want, names)
		}
	}

	rows, _, err = e.Query("select shard, entries, capacity from sys.plan_cache", engine.NI)
	if err != nil {
		t.Fatalf("sys.plan_cache: %v", err)
	}
	if len(rows) != 16 {
		t.Fatalf("sys.plan_cache has %d rows, want one per shard (16)", len(rows))
	}
	total := int64(0)
	for i, r := range rows {
		if r[0].I != int64(i) {
			t.Errorf("shard column = %d at row %d", r[0].I, i)
		}
		total += r[1].I
	}
	if total != int64(e.PlanCache().Len()) {
		t.Errorf("sys.plan_cache entries sum %d != cache Len %d", total, e.PlanCache().Len())
	}

	rows, _, err = e.Query("select id, query, duration_ns, rows_out from sys.query_log", engine.NI)
	if err != nil {
		t.Fatalf("sys.query_log: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("sys.query_log has %d rows after several queries", len(rows))
	}

	// A correlated subquery over the catalog must survive decorrelation:
	// the synthetic tables are ordinary relations to the rewriter, so the
	// same introspection query runs under NI and magic decorrelation.
	const correlated = `
		select q.id from sys.query_log q
		where q.duration_ns >= (select min(q2.duration_ns) from sys.query_log q2 where q2.strategy = q.strategy)`
	for _, s := range []engine.Strategy{engine.NI, engine.Magic} {
		rows, _, err := e.Query(correlated, s)
		if err != nil {
			t.Fatalf("correlated catalog query under %s: %v", s, err)
		}
		if len(rows) == 0 {
			t.Errorf("correlated catalog query under %s returned no rows", s)
		}
	}
}

func TestQueryLogRingBounded(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.EnableRegistry(4)
	for i := 0; i < 10; i++ {
		if _, _, err := e.Query(fmt.Sprintf("select name from emp where name > '%d'", i), engine.NI); err != nil {
			t.Fatal(err)
		}
	}
	log := e.Registry().Log()
	if len(log) != 4 {
		t.Fatalf("log holds %d entries, want ring cap 4", len(log))
	}
	for i, entry := range log {
		if want := int64(7 + i); entry.ID != want {
			t.Errorf("log[%d].ID = %d, want %d (oldest-first ring of the last 4)", i, entry.ID, want)
		}
		if entry.Err != "" || entry.Trip != "" {
			t.Errorf("successful query logged with error %q trip %q", entry.Err, entry.Trip)
		}
		if entry.Duration <= 0 || entry.RowsOut < 0 {
			t.Errorf("log[%d] has duration %v rows %d", i, entry.Duration, entry.RowsOut)
		}
	}
}

func TestRegistryDisabledByDefault(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	if e.Registry() != nil {
		t.Fatal("registry enabled without opt-in")
	}
	if e.Kill(1) {
		t.Fatal("Kill reported success without a registry")
	}
	if _, _, err := e.Query("select name from emp", engine.NI); err != nil {
		t.Fatal(err)
	}
}

// Budget trips are classified in the query log: a row-budget violation
// logs with trip "row-budget".
func TestQueryLogRecordsBudgetTrip(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.EnableRegistry(8)
	e.Limits = exec.Limits{MaxOutputRows: 1}
	if _, _, err := e.Query("select name from emp", engine.NI); !errors.Is(err, exec.ErrRowBudget) {
		t.Fatalf("got %v, want ErrRowBudget", err)
	}
	log := e.Registry().Log()
	if len(log) == 0 {
		t.Fatal("tripped query not logged")
	}
	last := log[len(log)-1]
	if last.Trip != "row-budget" {
		t.Errorf("trip = %q, want row-budget", last.Trip)
	}
	if last.Err == "" {
		t.Error("tripped query logged without error text")
	}
}
