package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/faultinject"
	"decorr/internal/tpcd"
)

// hashJoinQuery drives the executor's hash-join build and probe path over
// the EMP/DEPT database: an equality tie between two quantifiers on a
// column with no index (EMP.building is indexed, DEPT.building is not),
// so the planner cannot fall back to an index nested-loop join.
const hashJoinQuery = "select a.name, b.name from dept a, dept b where a.building = b.building"

// Satellite: pre-canceled contexts across the strategy × worker matrix.
// Every combination must return ErrCanceled with zero rows in bounded
// time, and the run must be typed — not a hang, not a generic error.
func TestPreCanceledContextMatrix(t *testing.T) {
	db := tpcd.EmpDept()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, s := range []engine.Strategy{engine.NI, engine.Magic, engine.Kim, engine.Dayal} {
		for _, workers := range []int{1, 2, 8} {
			name := fmt.Sprintf("%s/workers=%d", s, workers)
			e := engine.New(db)
			e.Workers = workers
			start := time.Now()
			rows, _, err := e.QueryContext(ctx, tpcd.ExampleQuery, s)
			elapsed := time.Since(start)
			if !errors.Is(err, exec.ErrCanceled) {
				t.Errorf("%s: got %v, want ErrCanceled", name, err)
			}
			if len(rows) != 0 {
				t.Errorf("%s: canceled query returned %d rows", name, len(rows))
			}
			if elapsed > 2*time.Second {
				t.Errorf("%s: cancellation took %v", name, elapsed)
			}
		}
	}
}

// Tentpole acceptance: a pathological correlated NI query over the TPC-D
// database (correlated inequality — every outer tuple rescans lineitem,
// no index applies) is cut off within 50ms of a 50ms deadline at workers
// 1 and 8, fails with ErrDeadlineExceeded, and the engine then serves the
// next query correctly.
func TestDeadlineBoundsPathologicalNIQuery(t *testing.T) {
	const pathological = `
		select p.p_partkey from parts p
		where p.p_retailprice < (select sum(l.l_extendedprice) from lineitem l where l.l_partkey < p.p_partkey)`
	const deadline = 50 * time.Millisecond
	const slack = 50 * time.Millisecond
	for _, workers := range []int{1, 8} {
		e := engine.New(tpcdTestDB)
		e.Workers = workers
		e.Limits = exec.Limits{Timeout: deadline}
		var elapsed time.Duration
		canceled := counterDelta("exec.canceled", func() {
			start := time.Now()
			rows, _, err := e.Query(pathological, engine.NI)
			elapsed = time.Since(start)
			if !errors.Is(err, exec.ErrDeadlineExceeded) {
				t.Fatalf("workers=%d: got %v, want ErrDeadlineExceeded", workers, err)
			}
			if len(rows) != 0 {
				t.Fatalf("workers=%d: timed-out query returned %d rows", workers, len(rows))
			}
		})
		if canceled == 0 {
			t.Errorf("workers=%d: exec.canceled did not move on a deadline trip", workers)
		}
		if elapsed > deadline+slack {
			t.Errorf("workers=%d: query ran %v, want within %v of the %v deadline",
				workers, elapsed, slack, deadline)
		}
		// The engine must stay fully usable: drop the limits and run a
		// normal query on the same engine.
		e.Limits = exec.Limits{}
		rows, _, err := e.Query("select p_partkey from parts where p_partkey < 4", engine.NI)
		if err != nil {
			t.Fatalf("workers=%d: engine unusable after deadline trip: %v", workers, err)
		}
		if len(rows) != 3 {
			t.Fatalf("workers=%d: follow-up query got %d rows, want 3", workers, len(rows))
		}
	}
}

// governedTotal runs sql unbudgeted over EMP/DEPT and returns the
// intermediate-row identity the governor accounts: RowsScanned +
// RowsJoined + RowsGrouped.
func governedTotal(t *testing.T, sql string, s engine.Strategy, workers int) ([]string, int64) {
	t.Helper()
	e := engine.New(tpcd.EmpDept())
	e.Workers = workers
	rows, stats, err := e.Query(sql, s)
	if err != nil {
		t.Fatalf("unbudgeted %s: %v", s, err)
	}
	return multiset(rows), stats.RowsScanned + stats.RowsJoined + stats.RowsGrouped
}

// Satellite: the exact row-budget trip boundary on the hash-join path —
// budget N (the run's true intermediate-row total) passes, budget N−1
// trips — at both worker counts, because the accounting is commutative.
func TestRowBudgetBoundaryHashJoin(t *testing.T) {
	for _, workers := range []int{1, 8} {
		want, n := governedTotal(t, hashJoinQuery, engine.NI, workers)
		if n == 0 {
			t.Fatal("hash-join query accounted zero intermediate rows")
		}
		e := engine.New(tpcd.EmpDept())
		e.Workers = workers
		e.Limits = exec.Limits{MaxIntermediateRows: n}
		rows, _, err := e.Query(hashJoinQuery, engine.NI)
		if err != nil {
			t.Fatalf("workers=%d: budget exactly N=%d tripped: %v", workers, n, err)
		}
		sameRows(t, "budget==N result", multiset(rows), want)
		e.Limits = exec.Limits{MaxIntermediateRows: n - 1}
		trips := counterDelta("exec.budget_trips", func() {
			if _, _, err := e.Query(hashJoinQuery, engine.NI); !errors.Is(err, exec.ErrRowBudget) {
				t.Fatalf("workers=%d: budget N-1=%d: got %v, want ErrRowBudget", workers, n-1, err)
			}
		})
		if trips == 0 {
			t.Errorf("workers=%d: exec.budget_trips did not move", workers)
		}
	}
}

// Satellite: the same exact boundary on the correlated fan-out path (the
// §2 example under nested iteration: per-tuple subquery scans dominate).
func TestRowBudgetBoundaryCorrelatedFanout(t *testing.T) {
	for _, workers := range []int{1, 8} {
		want, n := governedTotal(t, tpcd.ExampleQuery, engine.NI, workers)
		if n == 0 {
			t.Fatal("correlated query accounted zero intermediate rows")
		}
		e := engine.New(tpcd.EmpDept())
		e.Workers = workers
		e.Limits = exec.Limits{MaxIntermediateRows: n}
		rows, _, err := e.Query(tpcd.ExampleQuery, engine.NI)
		if err != nil {
			t.Fatalf("workers=%d: budget exactly N=%d tripped: %v", workers, n, err)
		}
		sameRows(t, "budget==N result", multiset(rows), want)
		e.Limits = exec.Limits{MaxIntermediateRows: n - 1}
		if _, _, err := e.Query(tpcd.ExampleQuery, engine.NI); !errors.Is(err, exec.ErrRowBudget) {
			t.Fatalf("workers=%d: budget N-1=%d: got %v, want ErrRowBudget", workers, n-1, err)
		}
	}
}

func TestOutputRowBudgetBoundary(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.Limits = exec.Limits{MaxOutputRows: 6}
	rows, _, err := e.Query("select name from emp", engine.NI)
	if err != nil || len(rows) != 6 {
		t.Fatalf("budget 6 over 6 output rows: rows=%d err=%v", len(rows), err)
	}
	e.Limits = exec.Limits{MaxOutputRows: 5}
	if _, _, err := e.Query("select name from emp", engine.NI); !errors.Is(err, exec.ErrRowBudget) {
		t.Fatalf("budget 5 over 6 output rows: got %v, want ErrRowBudget", err)
	}
}

func TestMemBudgetTripsOnHashBuild(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.Limits = exec.Limits{MaxTrackedBytes: 1}
	if _, _, err := e.Query(hashJoinQuery, engine.NI); !errors.Is(err, exec.ErrMemBudget) {
		t.Fatalf("1-byte budget: got %v, want ErrMemBudget", err)
	}
	// A generous budget passes and matches the unbudgeted result.
	want, _ := governedTotal(t, hashJoinQuery, engine.NI, 1)
	e.Limits = exec.Limits{MaxTrackedBytes: 1 << 30}
	rows, _, err := e.Query(hashJoinQuery, engine.NI)
	if err != nil {
		t.Fatalf("generous byte budget tripped: %v", err)
	}
	sameRows(t, "byte-budgeted result", multiset(rows), want)
}

// Satellite: a poisoned expression — division by zero inside a correlated
// predicate — must surface as an error, not a crash, under NI and a
// decorrelated strategy, and the engine must serve the next query.
func TestPoisonedExpressionYieldsErrorNotCrash(t *testing.T) {
	const poisoned = `
		select d.name from dept d
		where d.budget / (d.num_emps - d.num_emps) >
			(select count(*) from emp e where e.building = d.building)`
	db := tpcd.EmpDept()
	for _, s := range []engine.Strategy{engine.NI, engine.Magic} {
		e := engine.New(db)
		if _, _, err := e.Query(poisoned, s); err == nil {
			t.Fatalf("%s: division by zero in correlated predicate returned no error", s)
		}
		got, _ := query(t, e, tpcd.ExampleQuery, s)
		if len(got) == 0 {
			t.Fatalf("%s: engine returned nothing after poisoned statement", s)
		}
	}
}

// Satellite: an injected operator panic (fault-injection point inside the
// hash build) is isolated into a typed ErrPanic, counted in engine.panics,
// and leaves the engine usable once injection stops.
func TestInjectedPanicIsolatedAndCounted(t *testing.T) {
	defer faultinject.Disable()
	for _, workers := range []int{1, 8} {
		e := engine.New(tpcd.EmpDept())
		e.Workers = workers
		faultinject.Enable(faultinject.Plan{Seed: 3, Rules: map[faultinject.Point]faultinject.Rule{
			faultinject.HashBuild: {PanicEvery: 1},
		}})
		panics := counterDelta("engine.panics", func() {
			_, _, err := e.Query(hashJoinQuery, engine.NI)
			if !errors.Is(err, exec.ErrPanic) {
				t.Fatalf("workers=%d: got %v, want ErrPanic", workers, err)
			}
			var pe *exec.PanicError
			if !errors.As(err, &pe) || len(pe.Stack) == 0 {
				t.Fatalf("workers=%d: panic error %v lacks a captured stack", workers, err)
			}
		})
		if panics == 0 {
			t.Errorf("workers=%d: engine.panics did not move", workers)
		}
		faultinject.Disable()
		rows, _, err := e.Query(hashJoinQuery, engine.NI)
		if err != nil || len(rows) == 0 {
			t.Fatalf("workers=%d: engine unusable after recovered panic: rows=%d err=%v", workers, len(rows), err)
		}
	}
}

// Injected storage-scan errors surface as typed ErrInjected failures
// attributed to the table, never as wrong answers or crashes.
func TestInjectedScanErrorIsTyped(t *testing.T) {
	defer faultinject.Disable()
	faultinject.Enable(faultinject.Plan{Seed: 5, Rules: map[faultinject.Point]faultinject.Rule{
		faultinject.StorageScan: {ErrEvery: 1},
	}})
	e := engine.New(tpcd.EmpDept())
	_, _, err := e.Query("select name from emp", engine.NI)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
}

// CI hammer (run with -race): goroutines race real mid-flight
// cancellations against executions at several worker counts. Every
// outcome must be either a clean result or a typed governance error.
func TestCancellationHammer(t *testing.T) {
	db := tpcd.EmpDeptSized(60, 240, 8, 7)
	want, _, err := engine.New(db).Query(tpcd.ExampleQuery, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := multiset(want)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			e := engine.New(db)
			e.Workers = []int{1, 2, 8}[g%3]
			for i := 0; i < 15; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(2000))*time.Microsecond)
				rows, _, err := e.QueryContext(ctx, tpcd.ExampleQuery, engine.NI)
				cancel()
				switch {
				case err == nil:
					if fmt.Sprint(multiset(rows)) != fmt.Sprint(wantSet) {
						t.Errorf("goroutine %d: wrong rows under cancellation race", g)
						return
					}
				case errors.Is(err, exec.ErrCanceled) || errors.Is(err, exec.ErrDeadlineExceeded):
					if len(rows) != 0 {
						t.Errorf("goroutine %d: canceled run returned rows", g)
						return
					}
				default:
					t.Errorf("goroutine %d: untyped error under cancellation: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Satellite: cached plans must not capture per-call limits or contexts. A
// plan prepared under one deadline runs under another with full cache-hit
// parity, and a budget set after caching still governs the cached plan.
func TestPlanCacheIgnoresLimits(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.EnablePlanCache(16)
	e.Limits = exec.Limits{Timeout: time.Hour}
	cold, _, err := e.Query(hashJoinQuery, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	// Different deadline, same plan: a pure cache hit, no re-prepare.
	e.Limits = exec.Limits{Timeout: time.Minute}
	prepares := counterDelta("engine.prepares", func() {
		hits := counterDelta("plancache.hits", func() {
			warm, _, err := e.Query(hashJoinQuery, engine.NI)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, "warm under new deadline", multiset(warm), multiset(cold))
		})
		if hits != 1 {
			t.Fatalf("plancache.hits moved %d under a changed deadline, want 1", hits)
		}
	})
	if prepares != 0 {
		t.Fatalf("changing Limits re-prepared the plan (%d), want cache hit", prepares)
	}
	// A budget added after caching governs the cached plan (limits are
	// read per call, not captured): still a cache hit, now a typed trip.
	e.Limits = exec.Limits{MaxIntermediateRows: 1}
	hits := counterDelta("plancache.hits", func() {
		if _, _, err := e.Query(hashJoinQuery, engine.NI); !errors.Is(err, exec.ErrRowBudget) {
			t.Fatalf("cached plan under new budget: got %v, want ErrRowBudget", err)
		}
	})
	if hits != 1 {
		t.Fatalf("budgeted rerun missed the cache (hits=%d)", hits)
	}
	// And the trip did not poison the cache: restored limits, correct rows.
	e.Limits = exec.Limits{}
	rows, _, err := e.Query(hashJoinQuery, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "after budget trip", multiset(rows), multiset(cold))
}

// A Limits.Timeout applies per Run, anchored at each call — two governed
// runs in a row both get the full budget (no leakage of spent time).
func TestTimeoutAnchorsPerRun(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	e.Limits = exec.Limits{Timeout: time.Second}
	for i := 0; i < 3; i++ {
		if _, _, err := e.Query("select name from emp", engine.NI); err != nil {
			t.Fatalf("run %d under ample per-run timeout: %v", i, err)
		}
	}
}
