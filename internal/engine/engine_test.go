package engine_test

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"decorr/internal/classic"
	"decorr/internal/engine"
	"decorr/internal/exec"
	"decorr/internal/storage"
	"decorr/internal/tpcd"
)

// multiset renders rows order-independently for differential comparison.
func multiset(rows []storage.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func query(t *testing.T, e *engine.Engine, sql string, s engine.Strategy) ([]string, *exec.Stats) {
	t.Helper()
	rows, stats, err := e.Query(sql, s)
	if err != nil {
		t.Fatalf("%s: %v", s, err)
	}
	return multiset(rows), stats
}

func sameRows(t *testing.T, name string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d\n got: %v\nwant: %v", name, len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: row %d differs\n got %q\nwant %q", name, i, got[i], want[i])
			return
		}
	}
}

func TestExampleQueryAllStrategies(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	want, niStats := query(t, e, tpcd.ExampleQuery, engine.NI)
	sameRows(t, "NI ground truth", want, []string{"archives", "toys"})
	if niStats.SubqueryInvocations == 0 {
		t.Error("NI should invoke the correlated subquery")
	}
	for _, s := range []engine.Strategy{engine.NIMemo, engine.Dayal, engine.GanskiWong, engine.Magic, engine.OptMagic} {
		got, stats := query(t, e, tpcd.ExampleQuery, s)
		sameRows(t, s.String(), got, want)
		if s == engine.Magic || s == engine.OptMagic || s == engine.Dayal || s == engine.GanskiWong {
			if stats.SubqueryInvocations != 0 {
				t.Errorf("%s: still %d correlated invocations after decorrelation", s, stats.SubqueryInvocations)
			}
		}
	}
}

func TestKimCountBugReproduced(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	got, _ := query(t, e, tpcd.ExampleQuery, engine.Kim)
	// Kim's method loses the archives department: its building has no
	// employees, so the grouped temp table has no row for it, and the
	// join silently drops it — the historical COUNT bug, reproduced.
	sameRows(t, "Kim (COUNT bug)", got, []string{"toys"})
}

var tpcdTestDB = tpcd.Generate(tpcd.Config{SF: 0.1, Seed: 42})

func tpcdEngine(t *testing.T) *engine.Engine {
	t.Helper()
	return engine.New(tpcdTestDB)
}

func TestTPCDQueriesDifferential(t *testing.T) {
	e := tpcdEngine(t)
	cases := []struct {
		name, sql  string
		strategies []engine.Strategy
	}{
		{"Query1", tpcd.Query1, []engine.Strategy{engine.NIMemo, engine.Kim, engine.Dayal, engine.Magic, engine.OptMagic}},
		{"Query1b", tpcd.Query1b, []engine.Strategy{engine.NIMemo, engine.Kim, engine.Dayal, engine.Magic, engine.OptMagic}},
		{"Query2", tpcd.Query2, []engine.Strategy{engine.NIMemo, engine.Kim, engine.Dayal, engine.Magic, engine.OptMagic}},
		{"Query3", tpcd.Query3, []engine.Strategy{engine.NIMemo, engine.Magic, engine.OptMagic}},
		{"Query3Distinct", tpcd.Query3Distinct, []engine.Strategy{engine.NIMemo, engine.Magic, engine.OptMagic}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, _ := query(t, e, c.sql, engine.NI)
			if len(want) == 0 {
				t.Fatalf("NI produced no rows; the workload generator no longer matches the query constants")
			}
			for _, s := range c.strategies {
				got, _ := query(t, e, c.sql, s)
				sameRows(t, s.String(), got, want)
			}
		})
	}
}

func TestClassicApplicabilityLimits(t *testing.T) {
	e := tpcdEngine(t)
	// Query 3 is non-linear (UNION): "Neither Kim's nor Dayal's methods
	// can be applied" (§5.3).
	for _, s := range []engine.Strategy{engine.Kim, engine.Dayal} {
		if _, err := e.Prepare(tpcd.Query3, s); !errors.Is(err, classic.ErrNotApplicable) {
			t.Errorf("%s on Query3: got %v, want ErrNotApplicable", s, err)
		}
	}
	// Ganski/Wong cannot handle a multi-relation outer block.
	if _, err := e.Prepare(tpcd.Query1, engine.GanskiWong); !errors.Is(err, classic.ErrNotApplicable) {
		t.Errorf("GW on Query1: got %v, want ErrNotApplicable", err)
	}
}

func TestMagicEliminatesInvocations(t *testing.T) {
	e := tpcdEngine(t)
	for _, sql := range []string{tpcd.Query1, tpcd.Query1b, tpcd.Query2, tpcd.Query3} {
		_, ni, err := e.Query(sql, engine.NI)
		if err != nil {
			t.Fatal(err)
		}
		_, mag, err := e.Query(sql, engine.Magic)
		if err != nil {
			t.Fatal(err)
		}
		if ni.SubqueryInvocations == 0 {
			t.Error("NI: expected correlated invocations")
		}
		if mag.SubqueryInvocations != 0 {
			t.Errorf("Magic: %d correlated invocations remain", mag.SubqueryInvocations)
		}
	}
}

func TestMagicTraceStages(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.PrepareTraced(tpcd.ExampleQuery, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	if p.Trace == nil || len(p.Trace.Steps) < 4 {
		t.Fatalf("expected at least 4 trace stages, got %+v", p.Trace)
	}
	var titles []string
	for _, s := range p.Trace.Steps {
		titles = append(titles, s.Title)
		if s.Plan == "" {
			t.Errorf("stage %q captured no plan", s.Title)
		}
	}
	joined := strings.Join(titles, "\n")
	for _, want := range []string{"supplementary", "magic table", "absorbed", "COUNT-bug"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace stages missing %q:\n%s", want, joined)
		}
	}
}

func TestQuery3DistinctBindings(t *testing.T) {
	e := tpcdEngine(t)
	_, ni, err := e.Query(tpcd.Query3, engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	// The correlation column (s_nation, Europe) has exactly 5 distinct
	// values — the crux of Figure 9.
	if ni.DistinctInvocations != 5 {
		t.Errorf("distinct bindings = %d, want 5 (European nations)", ni.DistinctInvocations)
	}
	if ni.SubqueryInvocations <= ni.DistinctInvocations {
		t.Errorf("expected many duplicate invocations, got %d total / %d distinct",
			ni.SubqueryInvocations, ni.DistinctInvocations)
	}
}

func TestMaterializeCSEKnob(t *testing.T) {
	e := tpcdEngine(t)
	_, plain, err := e.Query(tpcd.Query1, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	e.MaterializeCSE = true
	rowsM, mat, err := e.Query(tpcd.Query1, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	e.MaterializeCSE = false
	rowsP, _, err := e.Query(tpcd.Query1, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "materialized vs recomputed", multiset(rowsM), multiset(rowsP))
	if plain.CSERecomputes == 0 {
		t.Error("Mag without materialization should recompute the supplementary CSE (§5.1)")
	}
	if mat.CSERecomputes != 0 {
		t.Errorf("materialized run still recomputed %d times", mat.CSERecomputes)
	}
}

func TestOptMagicAvoidsSupplementaryCSE(t *testing.T) {
	e := tpcdEngine(t)
	_, mag, err := e.Query(tpcd.Query2, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := e.Query(tpcd.Query2, engine.OptMagic)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Work() >= mag.Work() {
		t.Errorf("OptMag should do less work than Mag on Query2: opt=%d mag=%d", opt.Work(), mag.Work())
	}
}

// A Prepared plan is immutable at run time: concurrent Runs must agree.
func TestConcurrentRuns(t *testing.T) {
	e := engine.New(tpcd.EmpDept())
	p, err := e.Prepare(tpcd.ExampleQuery, engine.Magic)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < 50; i++ {
				rows, _, err := p.Run()
				if err != nil {
					errs <- err
					return
				}
				if len(rows) != len(want) {
					errs <- fmt.Errorf("row count changed: %d vs %d", len(rows), len(want))
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestStrategyNamesAndColumns(t *testing.T) {
	want := map[engine.Strategy]string{
		engine.NI: "NI", engine.NIMemo: "NIMemo", engine.Kim: "Kim",
		engine.Dayal: "Dayal", engine.GanskiWong: "GW",
		engine.Magic: "Mag", engine.OptMagic: "OptMag", engine.Auto: "Auto",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q want %q", int(s), s.String(), name)
		}
	}
	e := engine.New(tpcd.EmpDept())
	p, err := e.Prepare("select name as who, budget from dept", engine.NI)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Columns) != 2 || p.Columns[0] != "who" || p.Columns[1] != "budget" {
		t.Errorf("columns = %v", p.Columns)
	}
}
