package engine

import (
	"strings"
	"testing"

	"decorr/internal/ast"
	"decorr/internal/parser"
	"decorr/internal/tpcd"
)

// The parser rejects qualified view names in SQL before they reach the
// engine; this pins the engine-side guard for callers that hand
// createViewParsed a programmatically built statement. A dotted view
// would be unreachable (catalog resolution runs before view expansion),
// so it must be refused, and the refusal must not bump the DDL epoch or
// leak a partial definition.
func TestCreateViewParsedRejectsDottedName(t *testing.T) {
	e := New(tpcd.EmpDept())
	q, err := parser.Parse("select name from emp")
	if err != nil {
		t.Fatal(err)
	}
	epoch := e.Epoch()
	err = e.createViewParsed(&ast.CreateView{Name: "sys.shadow", Query: q})
	if err == nil || !strings.Contains(err.Error(), "cannot be qualified") {
		t.Fatalf("dotted view name: %v", err)
	}
	if e.Epoch() != epoch {
		t.Error("rejected view bumped the DDL epoch")
	}
	if len(e.views) != 0 {
		t.Errorf("rejected view registered: %v", e.views)
	}
}
