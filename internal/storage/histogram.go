package storage

import (
	"sort"

	"decorr/internal/sqltypes"
)

// histogramBuckets is the equi-depth bucket count; 32 gives ~3% resolution
// on range selectivities, plenty for join ordering.
const histogramBuckets = 32

// Histogram is an equi-depth histogram over one column's non-NULL values.
// It is the optimizer statistic behind range-predicate selectivity.
type Histogram struct {
	// Bounds holds bucket boundaries in non-decreasing order: bucket i
	// covers (Bounds[i], Bounds[i+1]]; len(Bounds) == buckets+1.
	Bounds []sqltypes.Value
	// Rows is the table cardinality at build time, NonNull the number of
	// histogrammed values.
	Rows, NonNull int
}

// Histogram returns the (lazily built, cached) histogram for the column,
// or nil for empty columns.
func (t *Table) Histogram(col int) *Histogram {
	if col < 0 || col >= len(t.Def.Columns) {
		return nil
	}
	t.statMu.Lock()
	defer t.statMu.Unlock()
	if h, ok := t.histCache[col]; ok && h.Rows == len(t.Rows) {
		return h.h
	}
	h := buildHistogram(t.Rows, col)
	if t.histCache == nil {
		t.histCache = map[int]histEntry{}
	}
	t.histCache[col] = histEntry{Rows: len(t.Rows), h: h}
	return h
}

type histEntry struct {
	Rows int
	h    *Histogram
}

func buildHistogram(rows []Row, col int) *Histogram {
	vals := make([]sqltypes.Value, 0, len(rows))
	for _, r := range rows {
		if !r[col].IsNull() {
			vals = append(vals, r[col])
		}
	}
	if len(vals) == 0 {
		return nil
	}
	sort.Slice(vals, func(i, j int) bool {
		return sqltypes.OrderCompare(vals[i], vals[j]) < 0
	})
	b := histogramBuckets
	if b > len(vals) {
		b = len(vals)
	}
	h := &Histogram{Rows: len(rows), NonNull: len(vals)}
	for i := 0; i <= b; i++ {
		idx := i * (len(vals) - 1) / b
		h.Bounds = append(h.Bounds, vals[idx])
	}
	return h
}

// FracBelow estimates the fraction of the table's rows whose column value
// compares less than v (or less-or-equal when inclusive). NULLs count as
// not qualifying.
func (h *Histogram) FracBelow(v sqltypes.Value, inclusive bool) float64 {
	if h == nil || h.NonNull == 0 || v.IsNull() {
		return 0
	}
	buckets := len(h.Bounds) - 1
	lo := 0
	for lo < len(h.Bounds) {
		c := sqltypes.OrderCompare(h.Bounds[lo], v)
		if c > 0 || (!inclusive && c == 0) {
			break
		}
		lo++
	}
	// lo boundaries are ≤ v (or < v when exclusive): lo-1 full buckets
	// qualify, plus an assumed half of the bucket v falls into.
	var frac float64
	switch {
	case lo == 0:
		frac = 0
	case lo >= len(h.Bounds):
		frac = 1
	default:
		frac = (float64(lo-1) + 0.5) / float64(buckets)
	}
	return frac * float64(h.NonNull) / float64(h.Rows)
}
