// Package storage implements the in-memory row store with hash indexes.
// It stands in for Starburst's storage layer: the execution engine reads
// tables through scans and (when present) per-column hash indexes, and the
// benchmark harness drops indexes to reproduce the paper's Figure 7
// experiment ("we dropped the index ... thereby increasing the work
// performed in each correlated invocation").
package storage

import (
	"fmt"
	"strings"
	"sync"

	"decorr/internal/colvec"
	"decorr/internal/faultinject"
	"decorr/internal/schema"
	"decorr/internal/sqltypes"
)

// Row is a tuple of values positionally matching a table's columns.
type Row []sqltypes.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// RowSource produces the current rows of a synthetic table. It is called
// on every scan, so the rows reflect live state; implementations must
// return rows they will not mutate afterwards.
type RowSource func() []Row

// Table is the stored form of a relation: a row slice plus optional hash
// indexes keyed by a single column ordinal. A table created with
// CreateSynthetic has no stored rows; every scan invokes its RowSource
// instead (the engine's sys.* catalog tables are such relations).
type Table struct {
	Def     *schema.Table
	Rows    []Row
	src     RowSource
	indexes map[int]*index

	// statMu guards the lazily built optimizer statistics below. The
	// estimator runs on the execution path, so parallel query workers can
	// race to fill these caches; rows and indexes stay lock-free because
	// loads and queries never overlap.
	statMu    sync.Mutex
	ndvCache  map[int]ndvEntry
	histCache map[int]histEntry

	// colMu guards the lazily built columnar projection. Like ndvCache it
	// is keyed on the row count: inserts invalidate it by growing Rows.
	colMu    sync.RWMutex
	colCache []colvec.Vec
	colRows  int
}

// ColVecs returns the table's columns as typed vectors, built lazily and
// cached until the table grows. The vectors alias the stored rows' string
// payloads; callers must treat them as read-only. Synthetic tables are not
// cached (their rows change per scan) and return ok=false — the vectorized
// executor declines them and stays on the row path.
func (t *Table) ColVecs() ([]colvec.Vec, bool) {
	if t.src != nil {
		return nil, false
	}
	n := len(t.Rows)
	t.colMu.RLock()
	if t.colCache != nil && t.colRows == n {
		vecs := t.colCache
		t.colMu.RUnlock()
		return vecs, true
	}
	t.colMu.RUnlock()
	vecs := make([]colvec.Vec, len(t.Def.Columns))
	rows := t.Rows[:n]
	for c := range vecs {
		vecs[c] = colvec.FromColumn(rows, c)
	}
	t.colMu.Lock()
	if t.colCache == nil || t.colRows != n {
		t.colCache, t.colRows = vecs, n
	} else {
		vecs = t.colCache // a racing builder stored first
	}
	t.colMu.Unlock()
	return vecs, true
}

type ndvEntry struct {
	rows int // row count when computed
	ndv  int
}

// NDV returns the number of distinct values in the column (an optimizer
// statistic). It is computed lazily and cached until the table grows.
func (t *Table) NDV(col int) int {
	if col < 0 || col >= len(t.Def.Columns) {
		return 1
	}
	t.statMu.Lock()
	defer t.statMu.Unlock()
	if e, ok := t.ndvCache[col]; ok && e.rows == len(t.Rows) {
		return e.ndv
	}
	seen := map[string]bool{}
	for _, r := range t.Rows {
		seen[keyOf(r[col])] = true
	}
	n := len(seen)
	if n == 0 {
		n = 1
	}
	if t.ndvCache == nil {
		t.ndvCache = map[int]ndvEntry{}
	}
	t.ndvCache[col] = ndvEntry{rows: len(t.Rows), ndv: n}
	return n
}

// NewTable creates an empty stored table for a definition.
func NewTable(def *schema.Table) *Table {
	return &Table{Def: def, indexes: map[int]*index{}}
}

// Synthetic reports whether the table's rows come from a RowSource.
func (t *Table) Synthetic() bool { return t.src != nil }

// Insert appends a row. The row must match the table arity; values are not
// type-coerced (the generators produce correctly typed data).
func (t *Table) Insert(r Row) error {
	if t.src != nil {
		return fmt.Errorf("storage: table %q is synthetic (read-only)", t.Def.Name)
	}
	if len(r) != len(t.Def.Columns) {
		return fmt.Errorf("storage: row arity %d does not match table %q arity %d",
			len(r), t.Def.Name, len(t.Def.Columns))
	}
	id := len(t.Rows)
	t.Rows = append(t.Rows, r)
	for col, idx := range t.indexes {
		idx.add(r[col], id)
	}
	return nil
}

func keyOf(v sqltypes.Value) string {
	return string(sqltypes.AppendKey(nil, v))
}

// index is a per-column hash index. byKey maps the canonical key encoding
// to row ids and answers every boxed probe. byInt is a typed fast path
// maintained while every non-NULL key in the column is an integer — the
// common case for join columns — letting the vectorized executor probe
// with an int64 instead of encoding a key per row. It is abandoned (set
// to nil) the first time a non-integer key is inserted.
type index struct {
	byKey map[string][]int
	byInt map[int64][]int
}

func (idx *index) add(v sqltypes.Value, id int) {
	k := keyOf(v)
	idx.byKey[k] = append(idx.byKey[k], id)
	if idx.byInt == nil {
		return
	}
	switch v.K {
	case sqltypes.KindInt:
		idx.byInt[v.I] = append(idx.byInt[v.I], id)
	case sqltypes.KindNull:
		// NULL keys never match a probe (SQL equality), so they do not
		// invalidate the typed path.
	default:
		idx.byInt = nil
	}
}

// Scan returns the table's full row slice. It is the executor's only
// full-scan entry point, which makes it the natural fault-injection site
// for storage-layer read errors: an injected fault surfaces as a typed
// error attributed to the table instead of a wrong answer. Synthetic
// tables materialize from their RowSource and skip fault injection — they
// are the introspection plane, which must stay readable while faults are
// being injected into the data plane.
func (t *Table) Scan() ([]Row, error) {
	if t.src != nil {
		return t.src(), nil
	}
	if err := faultinject.Check(faultinject.StorageScan); err != nil {
		return nil, fmt.Errorf("storage: scan %s: %w", t.Def.Name, err)
	}
	return t.Rows, nil
}

// CreateIndex builds a hash index on the named column. Creating an index
// that already exists is a no-op. Synthetic tables cannot be indexed:
// their rows change on every scan, so a built index would silently serve
// stale row ids.
func (t *Table) CreateIndex(col string) error {
	if t.src != nil {
		return fmt.Errorf("storage: cannot index synthetic table %q", t.Def.Name)
	}
	c := t.Def.ColIndex(col)
	if c < 0 {
		return fmt.Errorf("storage: no column %q in table %q", col, t.Def.Name)
	}
	if _, ok := t.indexes[c]; ok {
		return nil
	}
	idx := &index{
		byKey: make(map[string][]int, len(t.Rows)),
		byInt: make(map[int64][]int, len(t.Rows)),
	}
	for id, r := range t.Rows {
		idx.add(r[c], id)
	}
	t.indexes[c] = idx
	return nil
}

// DropIndex removes the hash index on the named column if present.
func (t *Table) DropIndex(col string) error {
	c := t.Def.ColIndex(col)
	if c < 0 {
		return fmt.Errorf("storage: no column %q in table %q", col, t.Def.Name)
	}
	delete(t.indexes, c)
	return nil
}

// HasIndex reports whether a hash index exists on the column ordinal.
func (t *Table) HasIndex(col int) bool {
	_, ok := t.indexes[col]
	return ok
}

// Lookup returns the row ids whose column equals v, using the index.
// It returns ok=false when no index exists on the column. A NULL probe
// returns no rows (SQL equality with NULL is never true).
func (t *Table) Lookup(col int, v sqltypes.Value) (ids []int, ok bool) {
	idx, ok := t.indexes[col]
	if !ok {
		return nil, false
	}
	if v.IsNull() {
		return nil, true
	}
	return idx.byKey[keyOf(v)], true
}

// IntIndex returns the typed integer probe map of the column's index, or
// nil when the column is unindexed or holds non-integer keys. The map is
// shared live state: callers may only read it. The vectorized executor
// probes it directly from typed int64 vectors, skipping per-row key
// encoding entirely.
func (t *Table) IntIndex(col int) map[int64][]int {
	idx, ok := t.indexes[col]
	if !ok {
		return nil
	}
	return idx.byInt
}

// LookupBuf is Lookup with a caller-owned scratch buffer for the key
// encoding: probe loops pass the returned buffer back in, so the per-probe
// key string allocation disappears (the map access via string(buf) does
// not allocate).
func (t *Table) LookupBuf(col int, v sqltypes.Value, buf []byte) (ids []int, out []byte, ok bool) {
	idx, ok := t.indexes[col]
	if !ok {
		return nil, buf, false
	}
	if v.IsNull() {
		return nil, buf, true
	}
	if idx.byInt != nil {
		switch v.K {
		case sqltypes.KindInt:
			return idx.byInt[v.I], buf, true
		case sqltypes.KindFloat:
			// A float probe can only equal an integer key when it converts
			// to int64 exactly (the key encoding routes such integers
			// through the float representation, so equality is exact
			// numeric equality; -0.0 normalizes to 0).
			f := v.F
			if f >= -9223372036854775808 && f < 9223372036854775808 {
				if i := int64(f); float64(i) == f {
					return idx.byInt[i], buf, true
				}
			}
			return nil, buf, true
		default:
			// Strings and booleans never compare equal to integer keys.
			return nil, buf, true
		}
	}
	buf = sqltypes.AppendKey(buf[:0], v)
	return idx.byKey[string(buf)], buf, true
}

// DB is a database instance: a catalog plus stored tables.
type DB struct {
	Catalog *schema.Catalog
	tables  map[string]*Table
}

// NewDB returns an empty database with an empty catalog.
func NewDB() *DB {
	return &DB{Catalog: schema.NewCatalog(), tables: map[string]*Table{}}
}

// Create registers a table definition and allocates its storage.
func (db *DB) Create(def *schema.Table) *Table {
	db.Catalog.Add(def)
	t := NewTable(def)
	db.tables[strings.ToLower(def.Name)] = t
	return t
}

// CreateSynthetic registers a read-only synthetic relation whose rows are
// produced by src at every scan. The definition enters the catalog like
// any table, so the binder, planner, and executor treat it uniformly —
// including as a subquery input of a decorrelated plan. The engine mounts
// its sys.* introspection tables through this.
func (db *DB) CreateSynthetic(def *schema.Table, src RowSource) *Table {
	db.Catalog.Add(def)
	t := &Table{Def: def, src: src, indexes: map[int]*index{}}
	db.tables[strings.ToLower(def.Name)] = t
	return t
}

// Table returns the stored table, or nil if absent.
func (db *DB) Table(name string) *Table {
	return db.tables[strings.ToLower(name)]
}

// MustTable returns the stored table or panics; used by generators and
// benchmarks that control their own schemas.
func (db *DB) MustTable(name string) *Table {
	t := db.Table(name)
	if t == nil {
		panic(fmt.Sprintf("storage: unknown table %q", name))
	}
	return t
}
