package storage

import (
	"math/rand"
	"testing"
	"testing/quick"

	"decorr/internal/schema"
	"decorr/internal/sqltypes"
)

func newT(t *testing.T) *Table {
	t.Helper()
	def := schema.NewTable("t",
		schema.Column{Name: "id", Type: schema.TInt},
		schema.Column{Name: "grp", Type: schema.TString},
	)
	def.AddKey("id")
	return NewTable(def)
}

func TestInsertAndArity(t *testing.T) {
	tb := newT(t)
	if err := tb.Insert(Row{sqltypes.NewInt(1), sqltypes.NewString("a")}); err != nil {
		t.Fatal(err)
	}
	if err := tb.Insert(Row{sqltypes.NewInt(1)}); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestIndexLifecycle(t *testing.T) {
	tb := newT(t)
	for i := 0; i < 10; i++ {
		must(t, tb.Insert(Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(string(rune('a' + i%3)))}))
	}
	if _, ok := tb.Lookup(1, sqltypes.NewString("a")); ok {
		t.Fatal("lookup without index must report !ok")
	}
	must(t, tb.CreateIndex("grp"))
	ids, ok := tb.Lookup(1, sqltypes.NewString("a"))
	if !ok || len(ids) != 4 { // i = 0,3,6,9
		t.Fatalf("lookup a: %v %v", ids, ok)
	}
	// Index maintained across later inserts.
	must(t, tb.Insert(Row{sqltypes.NewInt(10), sqltypes.NewString("a")}))
	ids, _ = tb.Lookup(1, sqltypes.NewString("a"))
	if len(ids) != 5 {
		t.Fatalf("after insert: %v", ids)
	}
	// NULL probes match nothing.
	ids, ok = tb.Lookup(1, sqltypes.Null)
	if !ok || len(ids) != 0 {
		t.Fatalf("null probe: %v %v", ids, ok)
	}
	must(t, tb.DropIndex("grp"))
	if _, ok := tb.Lookup(1, sqltypes.NewString("a")); ok {
		t.Fatal("dropped index still answers")
	}
	if tb.HasIndex(1) {
		t.Fatal("HasIndex after drop")
	}
	// Creating twice is a no-op; unknown columns error.
	must(t, tb.CreateIndex("grp"))
	must(t, tb.CreateIndex("grp"))
	if err := tb.CreateIndex("nope"); err == nil {
		t.Fatal("index on unknown column accepted")
	}
	if err := tb.DropIndex("nope"); err == nil {
		t.Fatal("drop of unknown column accepted")
	}
}

// Property: for random data, Lookup agrees with a linear scan.
func TestQuickLookupMatchesScan(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		def := schema.NewTable("q", schema.Column{Name: "k", Type: schema.TInt})
		tb := NewTable(def)
		n := r.Intn(50)
		for i := 0; i < n; i++ {
			v := sqltypes.NewInt(int64(r.Intn(8)))
			if r.Intn(10) == 0 {
				v = sqltypes.Null
			}
			if err := tb.Insert(Row{v}); err != nil {
				return false
			}
		}
		if err := tb.CreateIndex("k"); err != nil {
			return false
		}
		probe := sqltypes.NewInt(int64(r.Intn(8)))
		ids, ok := tb.Lookup(0, probe)
		if !ok {
			return false
		}
		var want []int
		for i, row := range tb.Rows {
			if sqltypes.Identical(row[0], probe) {
				want = append(want, i)
			}
		}
		if len(ids) != len(want) {
			return false
		}
		for i := range ids {
			if ids[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNDV(t *testing.T) {
	tb := newT(t)
	for i := 0; i < 12; i++ {
		must(t, tb.Insert(Row{sqltypes.NewInt(int64(i)), sqltypes.NewString(string(rune('a' + i%4)))}))
	}
	if got := tb.NDV(0); got != 12 {
		t.Errorf("NDV(id) = %d", got)
	}
	if got := tb.NDV(1); got != 4 {
		t.Errorf("NDV(grp) = %d", got)
	}
	// Cache invalidates on growth.
	must(t, tb.Insert(Row{sqltypes.NewInt(99), sqltypes.NewString("zz")}))
	if got := tb.NDV(1); got != 5 {
		t.Errorf("NDV(grp) after insert = %d", got)
	}
	// Out-of-range columns degrade to 1.
	if got := tb.NDV(9); got != 1 {
		t.Errorf("NDV(out of range) = %d", got)
	}
}

func TestDB(t *testing.T) {
	db := NewDB()
	def := schema.NewTable("people", schema.Column{Name: "name", Type: schema.TString})
	tb := db.Create(def)
	must(t, tb.Insert(Row{sqltypes.NewString("ada")}))
	if db.Table("PEOPLE") != tb {
		t.Error("table lookup must be case-insensitive")
	}
	if db.Table("ghost") != nil {
		t.Error("unknown table should be nil")
	}
	if db.Catalog.Lookup("people") != def {
		t.Error("catalog not wired")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustTable on unknown table must panic")
		}
	}()
	db.MustTable("ghost")
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func TestSyntheticTable(t *testing.T) {
	db := NewDB()
	n := 0
	def := schema.NewTable("sys.ticks", schema.Column{Name: "n", Type: schema.TInt})
	tb := db.CreateSynthetic(def, func() []Row {
		n++
		out := make([]Row, n)
		for i := range out {
			out[i] = Row{sqltypes.NewInt(int64(i))}
		}
		return out
	})
	if !tb.Synthetic() {
		t.Fatal("Synthetic() = false")
	}
	if db.Table("sys.ticks") != tb || db.Catalog.Lookup("sys.ticks") != def {
		t.Fatal("synthetic table not registered in db/catalog")
	}
	// Every scan re-invokes the source: live state, not a snapshot.
	r1, err := tb.Scan()
	must(t, err)
	r2, err := tb.Scan()
	must(t, err)
	if len(r1) != 1 || len(r2) != 2 {
		t.Fatalf("scans = %d, %d rows; want 1, 2", len(r1), len(r2))
	}
	// Read-only: no inserts, no indexes.
	if err := tb.Insert(Row{sqltypes.NewInt(9)}); err == nil {
		t.Fatal("Insert on synthetic table accepted")
	}
	if err := tb.CreateIndex("n"); err == nil {
		t.Fatal("CreateIndex on synthetic table accepted")
	}
	if tb.HasIndex(0) {
		t.Fatal("synthetic table has an index")
	}
}
