package storage

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"decorr/internal/schema"
	"decorr/internal/sqltypes"
)

func histTable(t *testing.T, vals []sqltypes.Value) *Table {
	t.Helper()
	def := schema.NewTable("h", schema.Column{Name: "v", Type: schema.TInt})
	tb := NewTable(def)
	for _, v := range vals {
		if err := tb.Insert(Row{v}); err != nil {
			t.Fatal(err)
		}
	}
	return tb
}

func TestHistogramUniform(t *testing.T) {
	var vals []sqltypes.Value
	for i := 0; i < 1000; i++ {
		vals = append(vals, sqltypes.NewInt(int64(i)))
	}
	h := histTable(t, vals).Histogram(0)
	if h == nil {
		t.Fatal("no histogram")
	}
	for _, c := range []struct {
		v    int64
		want float64
	}{{100, 0.1}, {500, 0.5}, {900, 0.9}} {
		got := h.FracBelow(sqltypes.NewInt(c.v), false)
		if math.Abs(got-c.want) > 0.06 {
			t.Errorf("FracBelow(%d) = %.3f, want ≈ %.2f", c.v, got, c.want)
		}
	}
	if got := h.FracBelow(sqltypes.NewInt(-5), false); got != 0 {
		t.Errorf("below minimum = %.3f", got)
	}
	if got := h.FracBelow(sqltypes.NewInt(5000), false); got != 1 {
		t.Errorf("above maximum = %.3f", got)
	}
}

func TestHistogramSkewAndNulls(t *testing.T) {
	var vals []sqltypes.Value
	for i := 0; i < 900; i++ {
		vals = append(vals, sqltypes.NewInt(1)) // heavy value
	}
	for i := 0; i < 50; i++ {
		vals = append(vals, sqltypes.NewInt(int64(100+i)))
	}
	for i := 0; i < 50; i++ {
		vals = append(vals, sqltypes.Null)
	}
	h := histTable(t, vals).Histogram(0)
	// 90% of rows are the value 1 — strictly below 2 but not below 1.
	got := h.FracBelow(sqltypes.NewInt(2), false)
	if got < 0.8 {
		t.Errorf("FracBelow(2) = %.3f, want ≥ 0.8 under 90%% skew", got)
	}
	// NULLs never qualify: the fraction is capped by the non-null share.
	if all := h.FracBelow(sqltypes.NewInt(10000), true); all > 0.96 {
		t.Errorf("FracBelow(max) = %.3f, should exclude the 5%% NULLs", all)
	}
}

func TestHistogramEmptyAndTiny(t *testing.T) {
	if h := histTable(t, nil).Histogram(0); h != nil {
		t.Error("empty column should have no histogram")
	}
	h := histTable(t, []sqltypes.Value{sqltypes.NewInt(7)}).Histogram(0)
	if h == nil {
		t.Fatal("single-value histogram missing")
	}
	if h.FracBelow(sqltypes.NewInt(7), false) != 0 {
		t.Error("nothing is strictly below the only value")
	}
}

func TestHistogramCacheInvalidation(t *testing.T) {
	tb := histTable(t, []sqltypes.Value{sqltypes.NewInt(1), sqltypes.NewInt(2)})
	h1 := tb.Histogram(0)
	if tb.Histogram(0) != h1 {
		t.Error("histogram not cached")
	}
	if err := tb.Insert(Row{sqltypes.NewInt(3)}); err != nil {
		t.Fatal(err)
	}
	if tb.Histogram(0) == h1 {
		t.Error("histogram cache survived growth")
	}
}

// Property: FracBelow is monotone in v and bounded by [0, 1].
func TestQuickHistogramMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var vals []sqltypes.Value
		n := 1 + r.Intn(200)
		for i := 0; i < n; i++ {
			vals = append(vals, sqltypes.NewInt(int64(r.Intn(50))))
		}
		def := schema.NewTable("q", schema.Column{Name: "v", Type: schema.TInt})
		tb := NewTable(def)
		for _, v := range vals {
			if err := tb.Insert(Row{v}); err != nil {
				return false
			}
		}
		h := tb.Histogram(0)
		prev := -1.0
		for v := int64(-1); v <= 51; v += 3 {
			frac := h.FracBelow(sqltypes.NewInt(v), true)
			if frac < 0 || frac > 1 || frac < prev {
				return false
			}
			prev = frac
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
