// The paper's §5 performance study in miniature: the three benchmark
// queries run under every strategy, printing wall time and the work
// counters so the figures' shapes are visible (who wins, by what factor,
// and where algorithms simply do not apply).
package main

import (
	"fmt"
	"time"

	"decorr"
)

func main() {
	const sf = 0.05
	fmt.Printf("Generating TPC-D database at SF=%g (paper: SF=1, 120 MB) ...\n\n", sf)
	db := decorr.TPCD(sf, 42)
	eng := decorr.NewEngine(db)

	queries := []struct{ name, sql, note string }{
		{"Query 1 (Fig 5)", decorr.Query1, "min-cost supplier; few invocations, no duplicates"},
		{"Query 1b (Fig 6)", decorr.Query1b, "wide predicates; many duplicated bindings"},
		{"Query 2 (Fig 8)", decorr.Query2, "key correlation, cheap subquery; decorrelation must not hurt"},
		{"Query 3 (Fig 9)", decorr.Query3, "non-linear UNION; Kim/Dayal inapplicable"},
	}
	strategies := []decorr.Strategy{
		decorr.NI, decorr.NIMemo, decorr.Kim, decorr.Dayal, decorr.Magic, decorr.OptMagic,
	}
	for _, q := range queries {
		fmt.Printf("=== %s — %s ===\n", q.name, q.note)
		fmt.Printf("%-8s %10s %10s %12s %8s\n", "strategy", "time", "work", "invocations", "rows")
		for _, s := range strategies {
			p, err := eng.Prepare(q.sql, s)
			if err != nil {
				fmt.Printf("%-8s not applicable\n", s)
				continue
			}
			start := time.Now()
			rows, stats, err := p.Run()
			if err != nil {
				fmt.Printf("%-8s error: %v\n", s, err)
				continue
			}
			fmt.Printf("%-8s %10s %10d %12d %8d\n",
				s, time.Since(start).Round(10*time.Microsecond),
				stats.Work(), stats.SubqueryInvocations, len(rows))
		}
		fmt.Println()
	}
}
