// The §4.4 "degrees of decorrelation": magic decorrelation adapts to the
// system environment through knobs. This example runs the same queries
// with each knob flipped and shows what changes.
package main

import (
	"fmt"

	"decorr"
)

const existsQuery = `
select d.name from dept d
where d.budget < 10000
  and exists (select * from emp e where e.building = d.building)`

func main() {
	db := decorr.EmpDept()

	fmt.Println("Knob 1 — DecorrelateExistential (§4.4: existential subqueries")
	fmt.Println("introduce CI boxes; systems without temp-table indexes may")
	fmt.Println("prefer to keep them correlated):")
	for _, on := range []bool{true, false} {
		eng := decorr.NewEngine(db)
		eng.CoreOpts.DecorrelateExistential = on
		rows, stats, err := eng.Query(existsQuery, decorr.Magic)
		check(err)
		fmt.Printf("  knob=%-5v -> %d rows, %d correlated invocations\n",
			on, len(rows), stats.SubqueryInvocations)
	}

	fmt.Println()
	fmt.Println("Knob 2 — UseOuterJoin (§4.4: without a LOJ operator the COUNT")
	fmt.Println("aggregate cannot be fully decorrelated; the rest of the query")
	fmt.Println("still is — partial decorrelation, same answer):")
	for _, on := range []bool{true, false} {
		eng := decorr.NewEngine(db)
		eng.CoreOpts.UseOuterJoin = on
		rows, stats, err := eng.Query(decorr.ExampleQuery, decorr.Magic)
		check(err)
		fmt.Printf("  knob=%-5v -> %d rows, %d correlated invocations\n",
			on, len(rows), stats.SubqueryInvocations)
	}

	fmt.Println()
	fmt.Println("Knob 3 — MaterializeCSE (§5.3: Starburst always recomputed the")
	fmt.Println("supplementary common subexpression; materializing it is the")
	fmt.Println("optimizer improvement the paper asks for):")
	tp := decorr.TPCD(0.05, 42)
	for _, on := range []bool{false, true} {
		eng := decorr.NewEngine(tp)
		eng.MaterializeCSE = on
		_, stats, err := eng.Query(decorr.Query1, decorr.Magic)
		check(err)
		fmt.Printf("  knob=%-5v -> work=%d, CSE recomputations=%d\n",
			on, stats.Work(), stats.CSERecomputes)
	}

	fmt.Println()
	fmt.Println("Knob 4 — the Auto strategy (§7: optimize twice, keep the cheaper")
	fmt.Println("plan):")
	eng := decorr.NewEngine(tp)
	p, err := eng.Prepare(decorr.Query2, decorr.Auto)
	check(err)
	fmt.Printf("  %-40s -> chose %s (estimated cost %.0f)\n",
		"Query 2 (cheap indexed subquery)", p.Chosen, p.EstimatedCost)

	noIdx := decorr.TPCD(0.05, 42)
	check(noIdx.MustTable("partsupp").DropIndex("ps_partkey"))
	eng2 := decorr.NewEngine(noIdx)
	p, err = eng2.Prepare(decorr.Query1b, decorr.Auto)
	check(err)
	fmt.Printf("  %-40s -> chose %s (estimated cost %.0f)\n",
		"Query 1(c) (subquery index dropped)", p.Chosen, p.EstimatedCost)
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
