// The paper's §1 motivation: "correlated queries are often created
// 'automatically' by application generators that translate queries from
// application domain-specific languages into SQL." This example is such a
// generator: a tiny report DSL compiles each report column into a
// correlated scalar subquery — the function-invocation idiom SQL
// programmers reach for — producing exactly the kind of machine-made
// correlation magic decorrelation exists to clean up.
package main

import (
	"fmt"
	"strings"
	"time"

	"decorr"
)

// reportColumn is one derived metric of the report, phrased the way an
// application generator would: an aggregate over a related table, matched
// on a correlation column.
type reportColumn struct {
	title   string
	agg     string // count | sum | min | max | avg
	expr    string // aggregated expression ("*" for count)
	table   string // related table
	matchOn string // correlation equality: <table-col> = <driver-col>
	filter  string // optional extra filter
}

// compile translates the report spec into SQL, one correlated scalar
// subquery per column — no human would hand-write it this way, which is
// the point.
func compile(driver, driverAlias string, keyCols []string, cols []reportColumn) string {
	var b strings.Builder
	b.WriteString("select ")
	b.WriteString(strings.Join(keyCols, ", "))
	for _, c := range cols {
		arg := c.expr
		if c.agg == "count" && c.expr == "*" {
			arg = "*"
		}
		fmt.Fprintf(&b, ",\n  (select %s(%s) from %s where %s", c.agg, arg, c.table, c.matchOn)
		if c.filter != "" {
			fmt.Fprintf(&b, " and %s", c.filter)
		}
		fmt.Fprintf(&b, ") as %s", strings.ReplaceAll(strings.ToLower(c.title), " ", "_"))
	}
	fmt.Fprintf(&b, "\nfrom %s %s\norder by %s", driver, driverAlias, keyCols[0])
	return b.String()
}

func main() {
	// A "supplier scorecard" report over the TPC-D data: three derived
	// metrics per supplier, each its own correlated subquery.
	sql := compile("suppliers", "s", []string{"s_name", "s_nation"}, []reportColumn{
		{title: "Catalog Size", agg: "count", expr: "*",
			table: "partsupp ps", matchOn: "ps.ps_suppkey = s.s_suppkey"},
		{title: "Cheapest Offer", agg: "min", expr: "ps.ps_supplycost",
			table: "partsupp ps", matchOn: "ps.ps_suppkey = s.s_suppkey"},
		{title: "Compatriot Customers", agg: "count", expr: "*",
			table: "customers c", matchOn: "c.c_nation = s.s_nation",
			filter: "c.c_mktsegment = 'BUILDING'"},
	})
	fmt.Println("Generated SQL (three machine-made correlated subqueries):")
	fmt.Println(sql)
	fmt.Println()

	db := decorr.TPCD(0.05, 42)
	run := func(label string, eng *decorr.Engine, s decorr.Strategy) {
		p, err := eng.Prepare(sql, s)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		rows, stats, err := p.Run()
		if err != nil {
			panic(err)
		}
		if s == decorr.Auto {
			label += fmt.Sprintf(" (chose %v)", p.Chosen)
		}
		fmt.Printf("%-18s %4d rows in %8s  invocations=%d work=%d cse-recomputes=%d\n",
			label, len(rows), time.Since(start).Round(10*time.Microsecond),
			stats.SubqueryInvocations, stats.Work(), stats.CSERecomputes)
	}
	plain := decorr.NewEngine(db)
	run("NI", plain, decorr.NI)
	run("Mag", plain, decorr.Magic)
	materializing := decorr.NewEngine(db)
	materializing.MaterializeCSE = true
	run("Mag+materialize", materializing, decorr.Magic)
	run("Auto", plain, decorr.Auto)

	fmt.Println()
	fmt.Println("All three generated columns decorrelate into set-oriented grouped")
	fmt.Println("joins over chained supplementary tables. With three subqueries the")
	fmt.Println("chained SUPPs nest, so the recompute-CSE policy the paper's")
	fmt.Println("Starburst used (§5.1) multiplies scans — materializing the common")
	fmt.Println("subexpressions (§5.3's wished-for optimization) removes them, and")
	fmt.Println("the Auto strategy (§7) picks the cheaper plan either way.")
}
