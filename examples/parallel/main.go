// The paper's §6 argument, simulated: in a shared-nothing cluster whose
// tables are not partitioned on the correlation attribute, nested
// iteration broadcasts every binding to every node — O(n²) computation
// fragments — while the magic-decorrelated plan repartitions each table
// once and then runs co-partitioned local joins.
package main

import (
	"fmt"

	"decorr"
)

func main() {
	db := decorr.EmpDeptSized(800, 4000, 32, 7)

	fmt.Println("Example query over EMP/DEPT partitioned by primary key")
	fmt.Println("(the general case: NOT partitioned on the correlation column).")
	fmt.Println()
	fmt.Printf("%-6s %-6s %10s %10s %10s %10s\n",
		"nodes", "plan", "messages", "fragments", "work", "makespan")
	for _, n := range []int{2, 4, 8, 16, 32} {
		cfg := decorr.ParallelConfig{Nodes: n}
		ni, err := decorr.SimulateNestedIteration(db, cfg)
		check(err)
		mg, err := decorr.SimulateMagic(db, cfg)
		check(err)
		if fmt.Sprint(ni.Rows) != fmt.Sprint(mg.Rows) {
			panic("simulated plans disagree on the answer")
		}
		fmt.Printf("%-6d %-6s %10d %10d %10d %10d\n", n, "NI",
			ni.Metrics.Messages, ni.Metrics.Fragments, ni.Metrics.Work, ni.Metrics.Makespan)
		fmt.Printf("%-6d %-6s %10d %10d %10d %10d\n", n, "Magic",
			mg.Metrics.Messages, mg.Metrics.Fragments, mg.Metrics.Work, mg.Metrics.Makespan)
	}

	fmt.Println()
	fmt.Println("§6.1 case 1 — tables co-partitioned on the correlation column:")
	cfg := decorr.ParallelConfig{Nodes: 8, Placement: decorr.PartitionByCorrelation}
	ni, err := decorr.SimulateNestedIteration(db, cfg)
	check(err)
	fmt.Printf("co-partitioned NI at 8 nodes: %d messages, %d fragments — \n",
		ni.Metrics.Messages, ni.Metrics.Fragments)
	fmt.Println("parallel nested iteration is only viable when the data already")
	fmt.Println("lives where the bindings are; decorrelation makes that placement.")
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
