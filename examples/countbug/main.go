// The COUNT bug, live: Kim's method silently loses the "archives"
// department — it sits in a building with no employees, so the grouped
// temp table has no row for it and the join drops it. Magic decorrelation
// compensates with a left outer join plus COALESCE(count, 0) and keeps the
// correct answer (paper §2, [Kie84]).
package main

import (
	"fmt"

	"decorr"
)

func main() {
	db := decorr.EmpDept()
	eng := decorr.NewEngine(db)

	fmt.Println("Departments of low budget with more employees than work in")
	fmt.Println("the department's building (paper §2). 'archives' is located")
	fmt.Println("in building B9, where nobody works: COUNT(*) must be 0 and")
	fmt.Println("archives (1 employee > 0) belongs in the answer.")
	fmt.Println()

	for _, s := range []decorr.Strategy{decorr.NI, decorr.Kim, decorr.Magic} {
		rows, _, err := eng.Query(decorr.ExampleQuery, s)
		if err != nil {
			panic(err)
		}
		var names []string
		for _, r := range rows {
			names = append(names, r[0].String())
		}
		verdict := "CORRECT"
		if len(names) != 2 {
			verdict = "WRONG — the COUNT bug ate a row"
		}
		fmt.Printf("%-6s -> %v   %s\n", s, names, verdict)
	}

	fmt.Println()
	fmt.Println("Magic decorrelation avoids the bug with BugRemoval:")
	fmt.Println("MAGIC LOJ Decorr_SubQuery, COALESCE(count, 0):")
	p, err := eng.Prepare(decorr.ExampleQuery, decorr.Magic)
	if err != nil {
		panic(err)
	}
	fmt.Println(p.Explain())
}
