// Quickstart: build a database, run the paper's §2 example query under
// nested iteration and under magic decorrelation, and inspect the plans.
package main

import (
	"fmt"
	"strings"

	"decorr"
)

func main() {
	// The built-in EMP/DEPT dataset of the paper's running example. You
	// can also build your own database:
	//
	//	db := decorr.NewDB()
	//	t := db.Create(decorr.NewTable("emp",
	//		decorr.Column{Name: "name", Type: decorr.TString},
	//		decorr.Column{Name: "building", Type: decorr.TString}))
	//	t.Insert(decorr.Row{decorr.String("anne"), decorr.String("B1")})
	db := decorr.EmpDept()
	eng := decorr.NewEngine(db)

	fmt.Println("Query (paper §2):")
	fmt.Println(decorr.ExampleQuery)
	fmt.Println()

	// Nested iteration: the correlated subquery runs once per qualifying
	// department tuple.
	rows, stats, err := eng.Query(decorr.ExampleQuery, decorr.NI)
	check(err)
	fmt.Printf("NI     answer=%v   %s\n", names(rows), stats)

	// Magic decorrelation: one set-oriented plan, zero invocations.
	rows, stats, err = eng.Query(decorr.ExampleQuery, decorr.Magic)
	check(err)
	fmt.Printf("Magic  answer=%v   %s\n", names(rows), stats)

	// Inspect the decorrelated plan: SUPP, MAGIC, the grouped
	// decorrelated subquery, and the COUNT-bug LOJ.
	p, err := eng.Prepare(decorr.ExampleQuery, decorr.Magic)
	check(err)
	fmt.Println("\nDecorrelated QGM:")
	fmt.Println(p.Explain())
}

func names(rows []decorr.Row) string {
	parts := make([]string, len(rows))
	for i, r := range rows {
		parts[i] = r[0].String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

func check(err error) {
	if err != nil {
		panic(err)
	}
}
